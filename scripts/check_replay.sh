#!/usr/bin/env bash
# Workload capture/replay regression lane.
#
# Five checks, strongest first:
#
#   1. Capture determinism — a fresh seeded `pdr_tool record` run must
#      replay with bit-identical per-tick digests at 1/2/4/8 threads
#      (`replay --verify`). This is the feature's core claim: any
#      captured run is a cross-thread-count differential test.
#   2. Fixture determinism — the checked-in canned workload
#      (tests/fixtures/ci_workload.wlog) must verify, and its
#      `replay --digests` output must byte-match the committed golden
#      (tests/fixtures/ci_workload.golden). This pins the digest
#      *format* and the engines' logical answers across PRs: an
#      intentional engine change regenerates the fixture pair, an
#      accidental one fails here. Assumes strict IEEE-754 doubles (the
#      build never enables -ffast-math).
#   2b. Concurrent fixture — the same pair for an MVCC capture
#      (tests/fixtures/ci_workload_mvcc.{wlog,golden}, recorded via
#      `pdr_tool record --concurrent`). Its verify path re-derives a
#      serialized reference per commit epoch and compares every snapshot
#      answer against it, so this lane pins the MVCC bit-identity claim
#      plus the epoch-tagged log format across PRs.
#   2c. FFT-rung fixture — the same pair for a capture with the FFT
#      whole-plane rung pinned (tests/fixtures/ci_workload_fft.{wlog,
#      golden}, recorded via `pdr_tool record --fft-grid 128`). Every
#      golden digest carries tier=4 (kFft), so this lane pins the FFT
#      rung's tier stamps, its answer transcripts, and the trailing
#      has_fft/fft_grid header fields across PRs. Lane 1 additionally
#      re-captures an FFT-rung run fresh each time and verifies it at
#      1/4 threads (the spectral path is single-threaded by design; the
#      exact-FR machinery around it is not).
#   3. Recording overhead — bench_micro's BM_MonitorTick vs
#      BM_MonitorTickRecorded probe pair: many short interleaved
#      repetitions after a warm-up window, min CPU time per side (the
#      check_overhead.sh methodology), best of up to
#      PDR_RECORD_GATE_TRIES independent probe runs: always-on capture
#      must cost at most PDR_RECORD_GATE_PCT percent (default 3).
#   4. Replay perf regression — min-of-N `replay --bench` CPU p99 over
#      the canned workload vs the committed BENCH_baseline.json
#      replay_bench series; fail above PDR_REPLAY_GATE_PCT percent
#      (default 10). The gate compares per-tick *CPU* time: wall time on
#      shared machines swings severalfold with cgroup throttling within
#      minutes, while CPU time moves only when the work changes. Skipped
#      (with a note) when the baseline has no replay_bench series or
#      when PDR_REPLAY_BENCH_GATE=off.
#
# On failure the workload slice and both digest listings are copied to
# PDR_REPLAY_ARTIFACTS (default: <build>/replay-artifacts) for upload.
#
# Usage: scripts/check_replay.sh [--build DIR]

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${repo}/build"
if [[ "${1:-}" == "--build" ]]; then
  build="$2"
fi

tool="${build}/examples/pdr_tool"
if [[ ! -x "${tool}" ]]; then
  echo "error: ${tool} not built (cmake --build ${build})" >&2
  exit 1
fi

fixture="${repo}/tests/fixtures/ci_workload.wlog"
golden="${repo}/tests/fixtures/ci_workload.golden"
artifacts="${PDR_REPLAY_ARTIFACTS:-${build}/replay-artifacts}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

fail() {
  echo "FAIL: $*" >&2
  mkdir -p "${artifacts}"
  cp -f "${fixture}" "${artifacts}/" 2>/dev/null || true
  cp -f "${golden}" "${artifacts}/" 2>/dev/null || true
  cp -f "${repo}/tests/fixtures/ci_workload_mvcc.wlog" \
      "${repo}/tests/fixtures/ci_workload_mvcc.golden" \
      "${repo}/tests/fixtures/ci_workload_fft.wlog" \
      "${repo}/tests/fixtures/ci_workload_fft.golden" \
      "${artifacts}/" 2>/dev/null || true
  cp -f "${tmpdir}"/*.wlog "${tmpdir}"/*.digests "${tmpdir}"/*.jsonl \
      "${artifacts}/" 2>/dev/null || true
  echo "replay artifacts saved to ${artifacts}" >&2
  exit 1
}

echo "==== replay lane 1: fresh capture verifies at 1/2/4/8 threads ===="
"${tool}" gen --out "${tmpdir}/fresh.pdrd" --objects 1200 --extent 800 \
    --duration 20 --interval 8 --seed 4242 >/dev/null
"${tool}" record --in "${tmpdir}/fresh.pdrd" --log "${tmpdir}/fresh.wlog" \
    --varrho 3 --l 30 --lookahead 4 --every 2 >/dev/null
for threads in 1 2 4 8; do
  "${tool}" replay --log "${tmpdir}/fresh.wlog" --verify \
      --threads "${threads}" >/dev/null \
      || fail "fresh capture diverged at --threads ${threads}"
  echo "  threads=${threads}: bit-identical"
done
# The same determinism claim for a fresh MVCC capture: every recorded
# snapshot answer must match the serialized reference re-derived at its
# pinned epoch.
"${tool}" record --in "${tmpdir}/fresh.pdrd" --log "${tmpdir}/fresh_mvcc.wlog" \
    --varrho 3 --l 30 --lookahead 4 --every 2 --concurrent 2 >/dev/null
for threads in 1 4; do
  "${tool}" replay --log "${tmpdir}/fresh_mvcc.wlog" --verify \
      --threads "${threads}" >/dev/null \
      || fail "fresh concurrent capture diverged at --threads ${threads}"
  echo "  concurrent threads=${threads}: bit-identical"
done
# And for a fresh capture with the FFT rung pinned: the whole-plane
# transform must answer every tick (tier=4) with thread-invariant digests.
"${tool}" record --in "${tmpdir}/fresh.pdrd" --log "${tmpdir}/fresh_fft.wlog" \
    --varrho 3 --l 30 --lookahead 4 --every 2 --fft-grid 128 >/dev/null
for threads in 1 4; do
  "${tool}" replay --log "${tmpdir}/fresh_fft.wlog" --verify \
      --threads "${threads}" >"${tmpdir}/fresh_fft.out" \
      || fail "fresh FFT-rung capture diverged at --threads ${threads}"
  grep -q 'fft=11' "${tmpdir}/fresh_fft.out" \
      || fail "fresh FFT-rung capture did not answer every tick at tier fft"
  echo "  fft threads=${threads}: bit-identical, all ticks tier=fft"
done

echo "==== replay lane 2: checked-in fixture matches its golden ===="
if [[ ! -f "${fixture}" || ! -f "${golden}" ]]; then
  fail "fixture pair missing (${fixture}, ${golden})"
fi
"${tool}" replay --log "${fixture}" --verify --digests \
    >"${tmpdir}/fixture.digests" \
    || fail "fixture capture no longer verifies against itself"
grep '^digest' "${tmpdir}/fixture.digests" >"${tmpdir}/got.digests"
if ! diff -u "${golden}" "${tmpdir}/got.digests"; then
  fail "fixture digests diverge from ${golden} — engine answers changed" \
       "(regenerate the fixture pair if the change is intentional)"
fi
echo "  $(wc -l <"${golden}") golden digests match"

echo "==== replay lane 2b: concurrent MVCC fixture matches its golden ===="
mvcc_fixture="${repo}/tests/fixtures/ci_workload_mvcc.wlog"
mvcc_golden="${repo}/tests/fixtures/ci_workload_mvcc.golden"
if [[ ! -f "${mvcc_fixture}" || ! -f "${mvcc_golden}" ]]; then
  fail "concurrent fixture pair missing (${mvcc_fixture}, ${mvcc_golden})"
fi
"${tool}" replay --log "${mvcc_fixture}" --verify --digests \
    >"${tmpdir}/mvcc_fixture.digests" \
    || fail "concurrent fixture no longer verifies against its serialized references"
grep '^digest' "${tmpdir}/mvcc_fixture.digests" >"${tmpdir}/mvcc_got.digests"
if ! diff -u "${mvcc_golden}" "${tmpdir}/mvcc_got.digests"; then
  fail "concurrent fixture digests diverge from ${mvcc_golden} —" \
       "snapshot answers changed (regenerate the pair if intentional)"
fi
echo "  $(wc -l <"${mvcc_golden}") golden snapshot digests match"

echo "==== replay lane 2c: FFT-rung fixture matches its golden ===="
fft_fixture="${repo}/tests/fixtures/ci_workload_fft.wlog"
fft_golden="${repo}/tests/fixtures/ci_workload_fft.golden"
if [[ ! -f "${fft_fixture}" || ! -f "${fft_golden}" ]]; then
  fail "FFT fixture pair missing (${fft_fixture}, ${fft_golden})"
fi
"${tool}" replay --log "${fft_fixture}" --verify --digests \
    >"${tmpdir}/fft_fixture.digests" \
    || fail "FFT-rung fixture no longer verifies against itself"
grep '^digest' "${tmpdir}/fft_fixture.digests" >"${tmpdir}/fft_got.digests"
if ! diff -u "${fft_golden}" "${tmpdir}/fft_got.digests"; then
  fail "FFT-rung fixture digests diverge from ${fft_golden} —" \
       "spectral answers changed (regenerate the pair if intentional)"
fi
grep -vq 'tier=4' "${tmpdir}/fft_got.digests" \
    && fail "FFT-rung fixture contains a non-fft tier stamp"
echo "  $(wc -l <"${fft_golden}") golden fft digests match"

echo "==== replay lane 3: recording overhead on the monitor-tick probe ===="
bench="${build}/bench/bench_micro"
gate_pct="${PDR_RECORD_GATE_PCT:-3}"
if [[ -x "${bench}" ]]; then
  # Many SHORT repetitions, not few long ones: a shared machine's CPU
  # speed steps by ±10% on a seconds timescale, so with few long reps
  # the two minima routinely land in different speed regimes and read
  # phantom overhead far above the recorder's real ~0.7% cost. 25×0.2 s
  # interleaved reps sample every regime on both sides; on top of that
  # the whole probe runs up to PDR_RECORD_GATE_TRIES times and the gate
  # takes the BEST run: throttling inflates individual readings
  # asymmetrically, but a genuine recording regression shifts every
  # independent run up, so the minimum over runs is the faithful
  # estimate. (See the probe comment in bench_micro.cc for the matching
  # probe-size rationale.)
  tries="${PDR_RECORD_GATE_TRIES:-3}"
  record_gate_ok=0
  for try in $(seq "${tries}"); do
    env -u PDR_FLIGHT_RECORDER "${bench}" \
        --benchmark_filter='^BM_MonitorTick(Recorded)?$' \
        --benchmark_repetitions="${PDR_RECORD_GATE_REPS:-25}" \
        --benchmark_min_time="${PDR_RECORD_GATE_MIN_TIME:-0.2}" \
        --benchmark_min_warmup_time=0.5 \
        --benchmark_enable_random_interleaving=true \
        --benchmark_report_aggregates_only=false \
        --benchmark_format=json >"${tmpdir}/record_probe.json"
    if python3 - "${tmpdir}/record_probe.json" "${gate_pct}" "${try}" <<'PY'
import json
import sys

path, gate_pct, attempt = sys.argv[1], float(sys.argv[2]), sys.argv[3]
with open(path) as f:
    doc = json.load(f)

times = {"BM_MonitorTick": [], "BM_MonitorTickRecorded": []}
for b in doc["benchmarks"]:
    if b.get("run_type", "iteration") != "iteration":
        continue
    name = b["name"].split("/")[0]
    if name in times:
        times[name].append(b["cpu_time"])

for name, t in times.items():
    if not t:
        sys.exit(f"no iterations for {name} in {path}")

off = min(times["BM_MonitorTick"])
on = min(times["BM_MonitorTickRecorded"])
pct = 100.0 * (on - off) / off
print(f"  try {attempt}: recorder off: {off / 1e6:.3f} ms  "
      f"on: {on / 1e6:.3f} ms  overhead: {pct:+.2f}% "
      f"(gate: {gate_pct:.1f}%)")
sys.exit(0 if pct <= gate_pct else 1)
PY
    then
      record_gate_ok=1
      break
    fi
  done
  if [[ "${record_gate_ok}" != 1 ]]; then
    fail "recording overhead exceeded ${gate_pct}% on all ${tries} probe runs"
  fi
else
  echo "  skipped (bench_micro not built)"
fi

echo "==== replay lane 4: bench p99 vs committed baseline ===="
if [[ "${PDR_REPLAY_BENCH_GATE:-on}" == "off" ]]; then
  echo "  skipped (PDR_REPLAY_BENCH_GATE=off)"
else
  reps="${PDR_REPLAY_BENCH_REPS:-5}"
  : >"${tmpdir}/bench.jsonl"
  for _ in $(seq "${reps}"); do
    "${tool}" replay --log "${fixture}" --bench \
        --jsonl "${tmpdir}/rep.jsonl" >/dev/null
    cat "${tmpdir}/rep.jsonl" >>"${tmpdir}/bench.jsonl"
  done
  python3 - "${tmpdir}/bench.jsonl" "${repo}/BENCH_baseline.json" \
      "${PDR_REPLAY_GATE_PCT:-10}" <<'PY' || fail "replay p99 regression gate"
import json
import sys

bench_path, baseline_path, gate_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])

p99s = []
with open(bench_path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        if row.get("type") == "series" and row.get("series") == "replay_bench":
            p99s.append(row["values"]["p99_cpu_ms"])
if not p99s:
    sys.exit("no replay_bench rows produced by pdr_tool replay --bench")
got = min(p99s)  # min-of-N: the least-interfered repetition

try:
    with open(baseline_path) as f:
        doc = json.load(f)
    rows = doc["benches"]["replay"]["replay_bench"]
    want = min(r["p99_cpu_ms"] for r in rows)
except (FileNotFoundError, KeyError, ValueError):
    print("  skipped (no replay_bench p99_cpu_ms series in "
          "BENCH_baseline.json — run scripts/bench_baseline.sh to "
          "record one)")
    sys.exit(0)

# Machine-speed normalization: the same fixed sha256 workload
# bench_baseline.sh timed when the baseline was recorded, re-timed now.
# CPU time tracks frequency regimes (±15% on shared machines), so the
# raw ratio would flag phantom regressions whenever the gate runs in a
# slower regime than the baseline recording; dividing by the
# calibration ratio cancels that. The yardstick is deliberately NOT
# repo code — a repo-code yardstick would slow down together with a
# genuine regression and mask it.
import hashlib
import time


def sha256_calib_ms():
    buf = bytes(range(256)) * 16  # 4 KiB
    best = float("inf")
    for _ in range(3):
        t0 = time.process_time()
        h = hashlib.sha256()
        for _ in range(20000):
            h.update(buf)
        best = min(best, 1000.0 * (time.process_time() - t0))
    return best


speed_note = ""
try:
    calib_base = doc["benches"]["replay"]["calibration"][0]["sha256_cpu_ms"]
    calib_now = sha256_calib_ms()
    speed = calib_now / calib_base
    got /= speed
    speed_note = f", machine speed x{speed:.3f} normalized out"
except (KeyError, IndexError, ZeroDivisionError):
    pass

pct = 100.0 * (got - want) / want
print(f"  cpu p99 baseline: {want:.3f} ms  now: {got:.3f} ms  "
      f"delta: {pct:+.2f}% (gate: {gate_pct:.1f}%{speed_note})")
if pct > gate_pct:
    sys.exit(f"replay cpu p99 regressed {pct:.2f}% over baseline "
             f"(gate {gate_pct:.1f}%)")
PY
fi

echo "==== replay lane passed ===="
