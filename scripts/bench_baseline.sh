#!/usr/bin/env bash
# Runs the accuracy/cost benches that track the paper's headline figures
# (Fig. 8 accuracy, Fig. 8 memory, Fig. 10 cost) plus the durability
# extension (checkpoint cost, WAL volume, recovery time) and the
# resilience extension (p99 latency and answer-tier mix vs offered load)
# with JSONL output and consolidates the series into one
# BENCH_baseline.json at the repo root. Two observability series ride
# along: the flight-recorder's off/on overhead on the end-to-end query
# probe and the byte size of one seeded deadline-miss dump pair.
# The timing-relevant cost bench runs twice — serial (--threads=1) and at
# hardware concurrency (--threads=0) — so the baseline records the scaling
# headroom of the parallel query paths; answers are bit-identical across
# the two runs, only the cost columns move. The file is the committed
# reference point: re-run after a performance- or accuracy-relevant change
# and diff to see what moved.
#
# Usage: scripts/bench_baseline.sh [--scale=X | --full] [--build DIR]
#
#   --scale=X   dataset-size multiplier forwarded to every bench
#               (default 0.1, the benches' own default)
#   --full      paper scale (forwarded; implies scale 1.0)
#   --build DIR build tree holding the bench binaries (default: build)

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${repo}/build"
bench_args=()
scale="0.1"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build)
      build="$2"
      shift 2
      ;;
    --full)
      bench_args+=("--full")
      scale="1.0"
      shift
      ;;
    --scale=*)
      bench_args+=("$1")
      scale="${1#--scale=}"
      shift
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

benches=(bench_fig8_accuracy bench_fig8_memory bench_fig10_cost
         bench_durability bench_resilience)
for b in "${benches[@]}"; do
  if [[ ! -x "${build}/bench/${b}" ]]; then
    echo "error: ${build}/bench/${b} not built (cmake --build ${build})" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

for b in "${benches[@]}"; do
  echo "==== ${b} (threads=1) ===="
  "${build}/bench/${b}" --jsonl="${tmpdir}/${b}.jsonl" \
      ${bench_args[@]+"${bench_args[@]}"} >/dev/null
done

# The cost bench again at hardware concurrency: same answers, parallel
# refinement/branch-and-bound timings.
hw="$(nproc 2>/dev/null || echo 0)"
echo "==== bench_fig10_cost (threads=${hw}) ===="
"${build}/bench/bench_fig10_cost" --threads=0 \
    --jsonl="${tmpdir}/bench_fig10_cost.threads_hw.jsonl" \
    ${bench_args[@]+"${bench_args[@]}"} >/dev/null

# Flight-recorder series: (a) the overhead probe pair from bench_micro —
# the same off/on interleaved comparison scripts/check_overhead.sh gates
# on, recorded here so the baseline tracks the recorder's end-to-end cost
# over time — and (b) the size of one deadline-miss dump pair (JSONL +
# Chrome trace) from a seeded pdr_tool run, so dump-volume regressions
# show up in the diff. Both are skipped (with a note) when the binaries
# aren't in the build tree.
if [[ -x "${build}/bench/bench_micro" ]]; then
  echo "==== bench_micro recorder overhead probe ===="
  env -u PDR_FLIGHT_RECORDER "${build}/bench/bench_micro" \
      --benchmark_filter='^BM_FrQuery(RecorderOn)?$' \
      --benchmark_repetitions=5 \
      --benchmark_enable_random_interleaving=true \
      --benchmark_format=json >"${tmpdir}/recorder_probe.json"
else
  echo "note: bench_micro not built; skipping recorder-overhead series"
fi
if [[ -x "${build}/examples/pdr_tool" ]]; then
  echo "==== pdr_tool seeded deadline-miss dump ===="
  dumpdir="${tmpdir}/fr_dumps"
  mkdir -p "${dumpdir}"
  "${build}/examples/pdr_tool" gen --out "${tmpdir}/dump_probe.pdrd" \
      --objects 2000 --extent 1000 --duration 20 --seed 7 >/dev/null
  "${build}/examples/pdr_tool" query --in "${tmpdir}/dump_probe.pdrd" \
      --varrho 3 --l 30 --qt 25 --deadline-ms 0.2 --degrade 1 \
      --flight-dir "${dumpdir}" >/dev/null 2>&1 || true
else
  echo "note: pdr_tool not built; skipping dump-size series"
fi

out="${repo}/BENCH_baseline.json"
python3 - "$out" "$scale" "${tmpdir}" "${benches[@]}" <<'PY'
import json
import os
import sys

out_path, scale, tmpdir = sys.argv[1], sys.argv[2], sys.argv[3]
benches = sys.argv[4:]

doc = {"schema": "pdr-bench-baseline/v2", "scale": float(scale),
       "benches": {}}


def collect(path):
    series = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("type") != "series":
                continue
            series.setdefault(row["series"], []).append(row["values"])
    return series


for bench in benches:
    doc["benches"][bench] = collect(f"{tmpdir}/{bench}.jsonl")
# Hardware-concurrency rerun of the cost bench (threads=hw vs the
# threads=1 series above).
doc["benches"]["bench_fig10_cost.threads_hw"] = collect(
    f"{tmpdir}/bench_fig10_cost.threads_hw.jsonl")

# Flight-recorder overhead: min CPU time of the interleaved off/on probe
# pair (see scripts/check_overhead.sh for the measurement rationale).
probe = os.path.join(tmpdir, "recorder_probe.json")
if os.path.exists(probe):
    with open(probe) as f:
        runs = json.load(f)["benchmarks"]
    mins = {}
    for b in runs:
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = b["name"].split("/")[0]
        mins[name] = min(mins.get(name, float("inf")), b["cpu_time"])
    off = mins.get("BM_FrQuery")
    on = mins.get("BM_FrQueryRecorderOn")
    if off and on:
        doc["benches"]["flight_recorder"] = {"overhead": [{
            "off_ms": off / 1e6, "on_ms": on / 1e6,
            "overhead_pct": 100.0 * (on - off) / off}]}

# Dump volume: sizes of the seeded deadline-miss dump pair.
dumpdir = os.path.join(tmpdir, "fr_dumps")
if os.path.isdir(dumpdir):
    rows = []
    for name in sorted(os.listdir(dumpdir)):
        if not name.endswith(".jsonl"):
            continue
        stem = os.path.join(dumpdir, name[:-len(".jsonl")])
        with open(stem + ".jsonl") as f:
            events = max(0, sum(1 for _ in f) - 1)  # minus header line
        row = {"dump": name[:-len(".jsonl")], "events": events,
               "jsonl_bytes": os.path.getsize(stem + ".jsonl")}
        if os.path.exists(stem + ".trace.json"):
            row["trace_bytes"] = os.path.getsize(stem + ".trace.json")
        rows.append(row)
    if rows:
        doc["benches"].setdefault("flight_recorder", {})["dump_size"] = rows

with open(out_path, "w") as f:
    json.dump(doc, f, indent=1, sort_keys=True)
    f.write("\n")

rows = sum(len(v) for b in doc["benches"].values() for v in b.values())
print(f"wrote {out_path}: {rows} rows across "
      f"{sum(len(b) for b in doc['benches'].values())} series")
PY
