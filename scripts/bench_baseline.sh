#!/usr/bin/env bash
# Runs the accuracy/cost benches that track the paper's headline figures
# (Fig. 8 accuracy, Fig. 8 memory, Fig. 10 cost) plus the durability
# extension (checkpoint cost, WAL volume, recovery time, and the
# online-scrub overhead series: verification cost per tick vs page
# budget) and the
# resilience extension (p99 latency and answer-tier mix vs offered load)
# and the MVCC extension (commit rate and snapshot-query p99 vs reader
# load) and the FFT extension (whole-plane field build cost vs raster
# resolution, batch amortization vs query count) with JSONL output and
# consolidates the series into one
# BENCH_baseline.json at the repo root. Two observability series ride
# along: the flight-recorder's off/on overhead on the end-to-end query
# probe and the byte size of one seeded deadline-miss dump pair.
# The timing-relevant cost bench runs twice — serial (--threads=1) and at
# hardware concurrency (--threads=0) — so the baseline records the scaling
# headroom of the parallel query paths; answers are bit-identical across
# the two runs, only the cost columns move. The file is the committed
# reference point: re-run after a performance- or accuracy-relevant change
# and diff to see what moved.
#
# Usage: scripts/bench_baseline.sh [--scale=X | --full] [--build DIR]
#
#   --scale=X   dataset-size multiplier forwarded to every bench
#               (default 0.1, the benches' own default)
#   --full      paper scale (forwarded; implies scale 1.0)
#   --build DIR build tree holding the bench binaries (default: build)

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${repo}/build"
bench_args=()
scale="0.1"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build)
      build="$2"
      shift 2
      ;;
    --full)
      bench_args+=("--full")
      scale="1.0"
      shift
      ;;
    --scale=*)
      bench_args+=("$1")
      scale="${1#--scale=}"
      shift
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

benches=(bench_fig8_accuracy bench_fig8_memory bench_fig10_cost
         bench_durability bench_resilience bench_mvcc bench_fft)
for b in "${benches[@]}"; do
  if [[ ! -x "${build}/bench/${b}" ]]; then
    echo "error: ${build}/bench/${b} not built (cmake --build ${build})" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

for b in "${benches[@]}"; do
  echo "==== ${b} (threads=1) ===="
  "${build}/bench/${b}" --jsonl="${tmpdir}/${b}.jsonl" \
      ${bench_args[@]+"${bench_args[@]}"} >/dev/null
done

# The cost bench again at hardware concurrency: same answers, parallel
# refinement/branch-and-bound timings.
hw="$(nproc 2>/dev/null || echo 0)"
echo "==== bench_fig10_cost (threads=${hw}) ===="
"${build}/bench/bench_fig10_cost" --threads=0 \
    --jsonl="${tmpdir}/bench_fig10_cost.threads_hw.jsonl" \
    ${bench_args[@]+"${bench_args[@]}"} >/dev/null

# Flight-recorder series: (a) the overhead probe pair from bench_micro —
# the same off/on interleaved comparison scripts/check_overhead.sh gates
# on, recorded here so the baseline tracks the recorder's end-to-end cost
# over time — and (b) the size of one deadline-miss dump pair (JSONL +
# Chrome trace) from a seeded pdr_tool run, so dump-volume regressions
# show up in the diff. Both are skipped (with a note) when the binaries
# aren't in the build tree.
if [[ -x "${build}/bench/bench_micro" ]]; then
  echo "==== bench_micro recorder overhead probe ===="
  env -u PDR_FLIGHT_RECORDER "${build}/bench/bench_micro" \
      --benchmark_filter='^BM_FrQuery(RecorderOn)?$' \
      --benchmark_repetitions=5 \
      --benchmark_enable_random_interleaving=true \
      --benchmark_format=json >"${tmpdir}/recorder_probe.json"
else
  echo "note: bench_micro not built; skipping recorder-overhead series"
fi
# Replay series: `pdr_tool replay --bench` over the canned CI workload
# (tests/fixtures/ci_workload.wlog) — the series scripts/check_replay.sh
# gates p99 against. Recorded here so the committed baseline and the CI
# gate measure the exact same fixed workload. Several repetitions, all
# rows kept: the gate compares min-of-N on both sides, so a baseline
# recorded from a single lucky-fast run would read every later
# (honest) measurement as a regression.
if [[ -x "${build}/examples/pdr_tool" && \
      -f "${repo}/tests/fixtures/ci_workload.wlog" ]]; then
  echo "==== pdr_tool replay --bench (canned CI workload) ===="
  : >"${tmpdir}/replay.jsonl"
  for _ in $(seq "${PDR_REPLAY_BENCH_REPS:-5}"); do
    "${build}/examples/pdr_tool" replay \
        --log "${repo}/tests/fixtures/ci_workload.wlog" --bench \
        --jsonl "${tmpdir}/replay_rep.jsonl" >/dev/null
    cat "${tmpdir}/replay_rep.jsonl" >>"${tmpdir}/replay.jsonl"
  done
else
  echo "note: pdr_tool or replay fixture missing; skipping replay series"
fi
if [[ -x "${build}/examples/pdr_tool" ]]; then
  echo "==== pdr_tool seeded deadline-miss dump ===="
  dumpdir="${tmpdir}/fr_dumps"
  mkdir -p "${dumpdir}"
  "${build}/examples/pdr_tool" gen --out "${tmpdir}/dump_probe.pdrd" \
      --objects 2000 --extent 1000 --duration 20 --seed 7 >/dev/null
  "${build}/examples/pdr_tool" query --in "${tmpdir}/dump_probe.pdrd" \
      --varrho 3 --l 30 --qt 25 --deadline-ms 0.2 --degrade 1 \
      --flight-dir "${dumpdir}" >/dev/null 2>&1 || true
else
  echo "note: pdr_tool not built; skipping dump-size series"
fi

# Provenance: without it a baseline diff can't be attributed — was the
# p99 shift a code change, a different compiler, or another machine?
git_sha="$(git -C "${repo}" rev-parse HEAD 2>/dev/null || echo unknown)"
git_dirty="clean"
if ! git -C "${repo}" diff --quiet HEAD 2>/dev/null; then
  git_dirty="dirty"
fi
cxx_path="$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' \
    "${build}/CMakeCache.txt" 2>/dev/null | head -1)"
cxx_version="$("${cxx_path:-c++}" --version 2>/dev/null | head -1 || echo unknown)"
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
    "${build}/CMakeCache.txt" 2>/dev/null | head -1)"
cxx_flags="$(sed -n 's/^CMAKE_CXX_FLAGS:[^=]*=//p' \
    "${build}/CMakeCache.txt" 2>/dev/null | head -1)"
date_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

out="${repo}/BENCH_baseline.json"
PDR_META_GIT="${git_sha} (${git_dirty})" \
PDR_META_COMPILER="${cxx_version}" \
PDR_META_BUILD_TYPE="${build_type:-}" \
PDR_META_CXX_FLAGS="${cxx_flags:-}" \
PDR_META_DATE="${date_utc}" \
python3 - "$out" "$scale" "${tmpdir}" "${benches[@]}" <<'PY'
import json
import os
import sys

out_path, scale, tmpdir = sys.argv[1], sys.argv[2], sys.argv[3]
benches = sys.argv[4:]

doc = {"schema": "pdr-bench-baseline/v2", "scale": float(scale),
       "metadata": {
           "git": os.environ.get("PDR_META_GIT", "unknown"),
           "compiler": os.environ.get("PDR_META_COMPILER", "unknown"),
           "build_type": os.environ.get("PDR_META_BUILD_TYPE", ""),
           "cxx_flags": os.environ.get("PDR_META_CXX_FLAGS", ""),
           "date": os.environ.get("PDR_META_DATE", ""),
       },
       "benches": {}}


def collect(path):
    series = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("type") != "series":
                continue
            series.setdefault(row["series"], []).append(row["values"])
    return series


for bench in benches:
    doc["benches"][bench] = collect(f"{tmpdir}/{bench}.jsonl")
# Hardware-concurrency rerun of the cost bench (threads=hw vs the
# threads=1 series above).
doc["benches"]["bench_fig10_cost.threads_hw"] = collect(
    f"{tmpdir}/bench_fig10_cost.threads_hw.jsonl")

# Replay bench over the canned CI workload (the check_replay.sh p99 gate
# reads doc["benches"]["replay"]["replay_bench"]). A machine-speed
# calibration rides along: a fixed sha256 workload (Python/OpenSSL, not
# repo code — a repo-code yardstick would shift with the very
# regressions the gate must catch) whose CPU time tracks the machine's
# frequency regime. The gate normalizes its p99 comparison by the
# calibration ratio, cancelling ±15% frequency swings that hit CPU time
# as much as wall time.
replay_jsonl = os.path.join(tmpdir, "replay.jsonl")
if os.path.exists(replay_jsonl):
    doc["benches"]["replay"] = collect(replay_jsonl)

    import hashlib
    import time

    def sha256_calib_ms():
        buf = bytes(range(256)) * 16  # 4 KiB
        best = float("inf")
        for _ in range(3):
            t0 = time.process_time()
            h = hashlib.sha256()
            for _ in range(20000):
                h.update(buf)
            best = min(best, 1000.0 * (time.process_time() - t0))
        return best

    doc["benches"]["replay"]["calibration"] = [
        {"sha256_cpu_ms": sha256_calib_ms()}]

# Flight-recorder overhead: min CPU time of the interleaved off/on probe
# pair (see scripts/check_overhead.sh for the measurement rationale).
probe = os.path.join(tmpdir, "recorder_probe.json")
if os.path.exists(probe):
    with open(probe) as f:
        runs = json.load(f)["benchmarks"]
    mins = {}
    for b in runs:
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = b["name"].split("/")[0]
        mins[name] = min(mins.get(name, float("inf")), b["cpu_time"])
    off = mins.get("BM_FrQuery")
    on = mins.get("BM_FrQueryRecorderOn")
    if off and on:
        doc["benches"]["flight_recorder"] = {"overhead": [{
            "off_ms": off / 1e6, "on_ms": on / 1e6,
            "overhead_pct": 100.0 * (on - off) / off}]}

# Dump volume: sizes of the seeded deadline-miss dump pair.
dumpdir = os.path.join(tmpdir, "fr_dumps")
if os.path.isdir(dumpdir):
    rows = []
    for name in sorted(os.listdir(dumpdir)):
        if not name.endswith(".jsonl"):
            continue
        stem = os.path.join(dumpdir, name[:-len(".jsonl")])
        with open(stem + ".jsonl") as f:
            events = max(0, sum(1 for _ in f) - 1)  # minus header line
        row = {"dump": name[:-len(".jsonl")], "events": events,
               "jsonl_bytes": os.path.getsize(stem + ".jsonl")}
        if os.path.exists(stem + ".trace.json"):
            row["trace_bytes"] = os.path.getsize(stem + ".trace.json")
        rows.append(row)
    if rows:
        doc["benches"].setdefault("flight_recorder", {})["dump_size"] = rows

with open(out_path, "w") as f:
    json.dump(doc, f, indent=1, sort_keys=True)
    f.write("\n")

rows = sum(len(v) for b in doc["benches"].values() for v in b.values())
print(f"wrote {out_path}: {rows} rows across "
      f"{sum(len(b) for b in doc['benches'].values())} series")
PY
