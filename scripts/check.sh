#!/usr/bin/env bash
# Full pre-merge check: build and test the library in the two configurations
# that matter — the plain release-ish default and an ASan+UBSan build
# (-DPDR_SANITIZE=ON) that exercises the same test suite with
# instrumentation. Uses its own build trees (build-check/, build-asan/) so it
# never clobbers an existing build/.
#
# Usage: scripts/check.sh [extra ctest args...]

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1"
  shift
  echo "==== configure ${dir} ($*) ===="
  cmake -B "${repo}/${dir}" -S "${repo}" "$@"
  echo "==== build ${dir} ===="
  cmake --build "${repo}/${dir}" -j "${jobs}"
  echo "==== test ${dir} ===="
  (cd "${repo}/${dir}" && ctest --output-on-failure -j "${jobs}" "${EXTRA_CTEST_ARGS[@]}")
}

EXTRA_CTEST_ARGS=("$@")

run_config build-check -DCMAKE_BUILD_TYPE=Release
run_config build-asan -DCMAKE_BUILD_TYPE=Debug -DPDR_SANITIZE=ON

echo "==== all checks passed ===="
