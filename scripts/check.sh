#!/usr/bin/env bash
# Full pre-merge check: build and test the library in the three
# configurations that matter — the plain release-ish default, an ASan+UBSan
# build (-DPDR_SANITIZE=ON) that exercises the same test suite with
# instrumentation, and a TSan build (-DPDR_SANITIZE=thread) that runs the
# concurrency-sensitive subset (thread pool, parallel engines, buffer pool,
# tracing, resilience) — then re-runs the fault-injection suites in the
# ASan tree with the full crash + transient matrix (PDR_CRASH_SWEEP=full),
# the silent-corruption battery with the full flip-position matrix
# (PDR_CORRUPT_SWEEP=full),
# and the resilience soak lane (PDR_SOAK=full: seeded overload against the
# admission controller and a transient-fault storm under a wall-clock
# budget) in the release tree, the flight-recorder overhead gate
# (scripts/check_overhead.sh: the recorder-on end-to-end query probe
# must stay within 3% of recorder-off), and the workload-replay lane
# (scripts/check_replay.sh: capture determinism, fixture goldens, the
# recording-overhead gate, and the replay-bench p99 regression gate).
# Uses its own build trees (build-check/, build-asan/, build-tsan/) so it
# never clobbers an existing build/.
#
# Usage: scripts/check.sh [extra ctest args...]

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

# ctest -R filter per configuration; empty means the whole suite.
run_config() {
  local dir="$1"
  local filter="$2"
  shift 2
  echo "==== configure ${dir} ($*) ===="
  cmake -B "${repo}/${dir}" -S "${repo}" "$@"
  echo "==== build ${dir} ===="
  cmake --build "${repo}/${dir}" -j "${jobs}"
  echo "==== test ${dir} ===="
  local ctest_args=(--output-on-failure -j "${jobs}")
  if [[ -n "${filter}" ]]; then
    ctest_args+=(-R "${filter}")
  fi
  (cd "${repo}/${dir}" && ctest "${ctest_args[@]}" "${EXTRA_CTEST_ARGS[@]}")
}

EXTRA_CTEST_ARGS=("$@")

# Everything that touches the thread pool, the parallel query paths, the
# buffer pool's read phase, or cross-thread tracing. TSan runs ~10x slower,
# so the single-threaded math/geometry suites are skipped there (ASan
# covers them above). The FFT lanes (FftTest, FftMetamorphicTest) are
# single-threaded spectral math and stay out for the same reason;
# DifferentialTest — which drives the FFT rung against exact FR at
# 1/2/4/8 threads — is in, so the rung's parallel surface is covered.
tsan_filter='^(ThreadPoolTest|DifferentialTest|DeterminismTest|BufferPoolTest|PagerTest|IoStatsTest|FrEngineTest|PaEngineTest|PdrMonitorTest|ObsTest|FlightRecorderTest|SloMonitorTest|ResilienceTest|ResilienceSoakTest|MvccInterleaveTest|MvccSoakTest)'

run_config build-check "" -DCMAKE_BUILD_TYPE=Release
run_config build-asan "" -DCMAKE_BUILD_TYPE=Debug -DPDR_SANITIZE=ON
run_config build-tsan "${tsan_filter}" -DCMAKE_BUILD_TYPE=Debug -DPDR_SANITIZE=thread

# Crash matrix: the durability suites once more in the ASan tree, this
# time sweeping every kill point in every crash mode (the default run
# above thins the torn/truncated modes to every third point; see
# tests/recovery_test.cc). The tree is already built — this only re-runs
# the fault-injection tests.
crash_filter='RecoverySweepTest|TransientSweepTest|MonitorDurabilityTest|WalTest|StorageFileTest|FaultInjectorTest|DiskPagerTest'
echo "==== crash matrix (build-asan, PDR_CRASH_SWEEP=full) ===="
(cd "${repo}/build-asan" && PDR_CRASH_SWEEP=full ctest --output-on-failure \
    -j "${jobs}" -R "${crash_filter}" "${EXTRA_CTEST_ARGS[@]+"${EXTRA_CTEST_ARGS[@]}"}")

# Corruption matrix: the silent-corruption battery in the ASan tree with
# the full flip-position matrix (every live page x every hot/cold damage
# class; the default run does one position per class — see
# tests/corruption_test.cc). Proves detection is total and self-healing
# bit-exact under instrumentation.
corrupt_filter='CorruptionTest|CorruptionSweepTest'
echo "==== corruption matrix (build-asan, PDR_CORRUPT_SWEEP=full) ===="
(cd "${repo}/build-asan" && PDR_CORRUPT_SWEEP=full ctest --output-on-failure \
    -j "${jobs}" -R "${corrupt_filter}" "${EXTRA_CTEST_ARGS[@]+"${EXTRA_CTEST_ARGS[@]}"}")

# Soak lane: the resilience suites at full scale in the release tree —
# sustained overload against the shared admission controller plus a
# transient-fault storm through the durable checkpoint path. The tests
# assert the serving contract (every query accounted for, bounded shed
# rate, no data loss) and carry their own wall-clock budget, so a hung
# query fails the lane instead of wedging it.
echo "==== resilience soak (build-check, PDR_SOAK=full) ===="
(cd "${repo}/build-check" && PDR_SOAK=full ctest --output-on-failure \
    -j "${jobs}" -R 'ResilienceSoakTest' "${EXTRA_CTEST_ARGS[@]+"${EXTRA_CTEST_ARGS[@]}"}")

# Flight-recorder overhead gate: recording must stay affordable enough to
# leave on in a serving process. Compares the bench_micro end-to-end query
# probe with the recorder off vs on (interleaved repetitions, min CPU
# time) and fails above 3%. Skipped when the bench tree wasn't built
# (google-benchmark not installed).
if [[ -x "${repo}/build-check/bench/bench_micro" ]]; then
  "${repo}/scripts/check_overhead.sh" --build "${repo}/build-check"
else
  echo "==== overhead gate skipped (bench_micro not built) ===="
fi

# Replay lane: fresh-capture determinism at 1/2/4/8 threads (serialized,
# MVCC, and FFT-rung captures), the canned fixtures — including the
# FFT-rung pair, whose goldens pin every tick at tier=fft — against their
# golden digests, the recording-overhead gate (BM_MonitorTick off/on
# within 3%), and the replay-bench p99 regression gate against
# BENCH_baseline.json (scripts/check_replay.sh).
"${repo}/scripts/check_replay.sh" --build "${repo}/build-check"

echo "==== all checks passed ===="
