// End-to-end integration: the full paper pipeline on a generated
// road-network workload — generator -> update stream -> (FR, PA, oracle)
// -> queries -> accuracy metrics — plus the generality property of
// Section 3.1 (PDR answers subsume the baselines' answers).

#include <gtest/gtest.h>

#include "pdr/pdr.h"

namespace pdr {
namespace {

constexpr double kExtent = 300.0;

struct Pipeline {
  Dataset dataset;
  FrEngine fr;
  PaEngine pa;
  Oracle oracle;
  double rho;
  double l;

  explicit Pipeline(int objects, double rel_threshold, double l_edge,
                    uint64_t seed)
      : dataset(GenerateDataset(
            [&] {
              WorkloadConfig config;
              config.WithExtent(kExtent);
              config.num_objects = objects;
              config.max_update_interval = 10;
              config.network.grid_nodes = 12;
              config.network.num_hotspots = 6;
              config.seed = seed;
              return config;
            }(),
            15)),
        fr({.extent = kExtent, .histogram_side = 30, .horizon = 20,
            .buffer_pages = 64, .io_ms = 10.0}),
        pa({.extent = kExtent, .poly_side = 6, .degree = 6, .horizon = 20,
            .l = l_edge, .eval_grid = 240}),
        oracle(kExtent),
        rho(rel_threshold * objects / (kExtent * kExtent)),
        l(l_edge) {
    ReplayInto(dataset, -1, &fr, &pa, &oracle);
  }
};

TEST(IntegrationTest, FrExactPaAccurateOnRoadWorkload) {
  Pipeline p(1500, 3.0, 30.0, 71);
  for (Tick q_t : {15, 20, 25}) {  // within W = 10 of now = 15
    const Region truth = p.oracle.DenseRegions(q_t, p.rho, p.l);
    const auto fr_result = p.fr.Query(q_t, p.rho, p.l);
    EXPECT_NEAR(SymmetricDifferenceArea(fr_result.region, truth), 0.0, 1e-6)
        << "FR must be exact at q_t=" << q_t;
    if (truth.Area() > 100.0) {
      const auto pa_result = p.pa.Query(q_t, p.rho);
      const AccuracyMetrics m = CompareRegions(truth, pa_result.region);
      EXPECT_LT(m.false_negative_ratio, 0.8) << "q_t=" << q_t;
      EXPECT_GT(m.Jaccard(), 0.15) << "q_t=" << q_t;
    }
  }
}

TEST(IntegrationTest, HotspotsProduceDenseRegions) {
  Pipeline p(2000, 2.0, 30.0, 72);
  const Region truth = p.oracle.DenseRegions(15, p.rho, p.l);
  EXPECT_GT(truth.Area(), 0.0)
      << "hotspot workload should contain dense regions";
  // Dense regions should be a small fraction of the domain (skew).
  EXPECT_LT(truth.Area(), 0.25 * kExtent * kExtent);
}

TEST(IntegrationTest, PdrSubsumesDenseCellAnswers) {
  // Section 3.1: with an l-square equal to the grid cell, the center of
  // every dense cell reported by [4] is a rho-dense point under PDR.
  Pipeline p(2000, 3.0, 10.0, 73);  // l == cell edge (300/30)
  const Tick q_t = 15;
  const Region cells = DenseCellQuery(p.fr.histogram(), q_t, p.rho);
  const Region pdr = p.fr.Query(q_t, p.rho, p.l).region;
  const Region coalesced = cells.Coalesced();
  for (const Rect& cell : coalesced.rects()) {
    // Probe centers of original grid cells inside the coalesced rect.
    const Grid& grid = p.fr.histogram().grid();
    for (double x = cell.x_lo + grid.cell_edge() / 2; x < cell.x_hi;
         x += grid.cell_edge()) {
      for (double y = cell.y_lo + grid.cell_edge() / 2; y < cell.y_hi;
           y += grid.cell_edge()) {
        EXPECT_TRUE(pdr.Contains({x, y}))
            << "dense-cell center (" << x << "," << y
            << ") missing from PDR answer";
      }
    }
  }
}

TEST(IntegrationTest, PdrSubsumesEdqCenters) {
  // Section 3.1: the centers of EDQ's dense squares are rho-dense points.
  Pipeline p(2000, 3.0, 20.0, 74);  // l = 2 cells
  const Tick q_t = 15;
  const EdqResult edq = EffectiveDensityQuery(p.fr.histogram(), q_t, p.rho,
                                              p.l, EdqStrategy::kDensestFirst);
  const Region pdr = p.fr.Query(q_t, p.rho, p.l).region;
  for (const Rect& square : edq.squares) {
    EXPECT_TRUE(pdr.Contains(square.Center()))
        << "EDQ square center " << square.Center().ToString()
        << " missing from PDR answer";
  }
}

TEST(IntegrationTest, CostModelOrdersMethodsAsInPaper) {
  // PA total cost (pure CPU) should be far below FR cold total cost
  // (CPU + charged I/O) on a non-trivial workload — the Fig. 10 headline.
  Pipeline p(4000, 2.0, 30.0, 75);
  const Tick q_t = 18;
  const auto fr_result = p.fr.Query(q_t, p.rho, p.l, /*cold_cache=*/true);
  const auto pa_result = p.pa.Query(q_t, p.rho);
  EXPECT_GT(fr_result.cost.TotalMs(), pa_result.cost.TotalMs());
  EXPECT_EQ(pa_result.cost.io_reads(), 0);
}

TEST(IntegrationTest, FullyDeterministicForSeed) {
  // Two independent end-to-end runs with the same seed must agree on the
  // query answers bit for bit (generator, engines, and region algebra are
  // all deterministic).
  auto run = [] {
    Pipeline p(1000, 3.0, 30.0, 77);
    return p.fr.Query(20, p.rho, p.l).region;
  };
  const Region a = run();
  const Region b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.rects()[i], b.rects()[i]);
  }
}

TEST(IntegrationTest, InterleavedQueriesAndUpdatesStayConsistent) {
  WorkloadConfig config;
  config.WithExtent(kExtent);
  config.num_objects = 800;
  config.max_update_interval = 8;
  config.network.grid_nodes = 10;
  config.seed = 76;
  TripSimulator sim(config);

  FrEngine fr({.extent = kExtent, .histogram_side = 30, .horizon = 16,
               .buffer_pages = 64, .io_ms = 10.0});
  Oracle oracle(kExtent);
  const double rho = 3.0 * 800 / (kExtent * kExtent);

  for (const UpdateEvent& e : sim.Bootstrap()) {
    fr.Apply(e);
    oracle.Apply(e);
  }
  for (Tick now = 1; now <= 20; ++now) {
    fr.AdvanceTo(now);
    oracle.AdvanceTo(now);
    for (const UpdateEvent& e : sim.Advance(now)) {
      fr.Apply(e);
      oracle.Apply(e);
    }
    if (now % 5 == 0) {
      const Tick q_t = now + 4;  // predictive, within W = 8
      const Region got = fr.Query(q_t, rho, 20.0).region;
      const Region want = oracle.DenseRegions(q_t, rho, 20.0);
      EXPECT_NEAR(SymmetricDifferenceArea(got, want), 0.0, 1e-6)
          << "now=" << now;
    }
  }
}

}  // namespace
}  // namespace pdr
