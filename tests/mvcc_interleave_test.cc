// MVCC snapshot reads: the concurrent-interleaving harness.
//
// The claim under test is the whole subsystem's contract (DESIGN.md §14):
// while one writer commits the update stream epoch by epoch at full rate,
// any number of reader threads may pin any committed epoch and every
// snapshot answer is *bit-identical* — rectangle bits, filter/refine
// counters, logical I/O — to what a fully serialized execution produced
// at the moment that epoch was current. The harness makes that claim
// falsifiable per interleaving: the writer computes the serialized
// reference transcript for each enqueued query BEFORE applying the next
// batch (while the epoch is still the live state), then hands the pinned
// snapshot to a reader pool that runs the same query concurrently with
// later commits, at 1/2/4/8 reader threads, over seeded schedules and
// both index kinds. Any divergence reports the seed, epoch, and the first
// differing transcript line.
//
// Also covered: pins keep arbitrarily old epochs readable through
// reclamation, commit-rate independence from reader pins, cancellation
// mid-snapshot releasing the pin cleanly, and the frozen-clock horizon
// contract.

#include <gtest/gtest.h>

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pdr/common/errors.h"
#include "pdr/common/random.h"
#include "pdr/core/fr_engine.h"
#include "pdr/mobility/generator.h"
#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/mvcc/snapshot_query.h"
#include "pdr/resilience/deadline.h"
#include "transcript_util.h"

namespace pdr {
namespace {

constexpr double kExtent = 200.0;

// Bit-exact transcript of one already-computed FR answer (the engine-side
// half of test_util::AppendFrQuery, which would re-run the query).
std::string ResultTranscript(const FrEngine::QueryResult& r, Tick q_t) {
  std::ostringstream os;
  os << "q_t=" << q_t << " cells=" << r.accepted_cells << '/'
     << r.candidate_cells << '/' << r.rejected_cells
     << " fetched=" << r.objects_fetched << " sweep=" << r.sweep.x_strips
     << '/' << r.sweep.y_sweeps << '/' << r.sweep.y_strips << '/'
     << r.sweep.dense_rects << " logical=" << r.cost.io.logical_reads
     << " region=";
  test_util::AppendRegion(r.region, &os);
  return os.str();
}

struct MvccRig {
  mvcc::SnapshotManager snapshots;
  std::unique_ptr<FrEngine> fr;

  explicit MvccRig(IndexKind index = IndexKind::kTprTree,
                   Tick horizon = 24) {
    fr = std::make_unique<FrEngine>(
        FrEngine::Options{.extent = kExtent,
                          .histogram_side = 16,
                          .horizon = horizon,
                          .buffer_pages = 64,
                          .index = index,
                          .max_update_interval = 8,
                          .snapshots = &snapshots});
  }

  mvcc::Epoch Commit() {
    fr->PrepareCommit();
    return snapshots.Commit({fr->CaptureState(), nullptr});
  }
};

Dataset StreamDataset(uint64_t seed, int objects = 150, int duration = 18) {
  WorkloadConfig config;
  config.WithExtent(kExtent);
  config.num_objects = objects;
  config.max_update_interval = 8;
  config.seed = seed;
  return GenerateDataset(config, duration);
}

// One enqueued unit of reader work: a pinned epoch, the query to run
// against it, and the serialized reference transcript recorded while the
// epoch was the live state.
struct PinnedQuery {
  mvcc::Snapshot snap;
  mvcc::Epoch epoch = 0;
  Tick q_t = 0;
  double rho = 0.0;
  double l = 0.0;
  std::string expected;
};

// Seeded writer/reader interleaving at `readers` threads; returns failure
// descriptions (empty = every snapshot answer was bit-identical).
std::vector<std::string> RunInterleaving(IndexKind index, uint64_t seed,
                                         int readers) {
  MvccRig rig(index);
  const Dataset ds = StreamDataset(seed);
  const double rho = 4.0 * ds.config.num_objects / (kExtent * kExtent);
  const double l = 25.0;
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 7);

  std::mutex mu;
  std::condition_variable cv;
  std::deque<PinnedQuery> queue;
  bool writer_done = false;
  std::vector<std::string> failures;

  auto reader_loop = [&] {
    for (;;) {
      PinnedQuery work;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !queue.empty() || writer_done; });
        if (queue.empty()) return;
        work = std::move(queue.front());
        queue.pop_front();
      }
      std::string got;
      try {
        const FrEngine::QueryResult result = mvcc::SnapshotFrQuery(
            *rig.fr, work.snap, work.q_t, work.rho, work.l);
        got = ResultTranscript(result, work.q_t);
      } catch (const std::exception& e) {
        got = std::string("exception: ") + e.what();
      }
      if (got != work.expected) {
        std::lock_guard<std::mutex> lock(mu);
        failures.push_back("epoch " + std::to_string(work.epoch) +
                           ": snapshot diverged from serialized\n  want: " +
                           work.expected + "  got:  " + got);
      }
      work.snap.Release();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(readers));
  for (int r = 0; r < readers; ++r) pool.emplace_back(reader_loop);

  // A long-lived pin taken at the first epoch and queried only after the
  // writer finished: old versions must survive every later commit.
  PinnedQuery held;

  // Writer: apply each tick's batch, commit it as one epoch, and (per the
  // seeded schedule) record serialized references + pin snapshots for the
  // readers — all before the next batch mutates the live state.
  for (Tick now = 0; now <= ds.duration(); ++now) {
    rig.fr->AdvanceTo(now);
    for (const UpdateEvent& e : ds.ticks[now]) rig.fr->Apply(e);
    const mvcc::Epoch epoch = rig.Commit();

    const int queries = static_cast<int>(rng.UniformInt(0, 3));
    for (int q = 0; q < queries; ++q) {
      PinnedQuery work;
      work.q_t = now + static_cast<Tick>(rng.UniformInt(0, 6));
      work.rho = rng.Uniform(0.5, 2.0) * rho;
      work.l = l;
      work.epoch = epoch;
      const FrEngine::QueryResult reference =
          rig.fr->Query(work.q_t, work.rho, work.l);
      work.expected = ResultTranscript(reference, work.q_t);
      work.snap = rig.snapshots.Pin();
      if (epoch == 1 && !held.snap.valid()) {
        held = std::move(work);
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        queue.push_back(std::move(work));
      }
      cv.notify_one();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    writer_done = true;
  }
  cv.notify_all();
  for (std::thread& t : pool) t.join();

  // The held pin answers last, long after its epoch stopped being live.
  if (held.snap.valid()) {
    const FrEngine::QueryResult result = mvcc::SnapshotFrQuery(
        *rig.fr, held.snap, held.q_t, held.rho, held.l);
    if (ResultTranscript(result, held.q_t) != held.expected) {
      failures.push_back("held epoch-" + std::to_string(held.epoch) +
                         " pin diverged after " +
                         std::to_string(rig.snapshots.committed_epoch()) +
                         " commits");
    }
    held.snap.Release();
  }
  return failures;
}

TEST(MvccInterleaveTest, TprSnapshotsBitIdenticalAtEveryReaderCount) {
  for (const int readers : {1, 2, 4, 8}) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      const auto failures =
          RunInterleaving(IndexKind::kTprTree, seed, readers);
      for (const std::string& f : failures) {
        ADD_FAILURE() << "tpr readers=" << readers << " seed=" << seed
                      << ": " << f;
      }
    }
  }
}

TEST(MvccInterleaveTest, BxSnapshotsBitIdenticalAtEveryReaderCount) {
  for (const int readers : {1, 2, 4, 8}) {
    for (uint64_t seed = 11; seed <= 16; ++seed) {
      const auto failures =
          RunInterleaving(IndexKind::kBxTree, seed, readers);
      for (const std::string& f : failures) {
        ADD_FAILURE() << "bx readers=" << readers << " seed=" << seed
                      << ": " << f;
      }
    }
  }
}

TEST(MvccInterleaveTest, PinKeepsOldEpochReadableThroughReclamation) {
  MvccRig rig;
  const Dataset ds = StreamDataset(/*seed=*/42, /*objects=*/120,
                                   /*duration=*/30);
  const double rho = 4.0 * ds.config.num_objects / (kExtent * kExtent);

  rig.fr->AdvanceTo(0);
  for (const UpdateEvent& e : ds.ticks[0]) rig.fr->Apply(e);
  rig.Commit();
  const FrEngine::QueryResult reference = rig.fr->Query(3, rho, 25.0);
  mvcc::Snapshot old_pin = rig.snapshots.Pin();

  // 30 more committed epochs: reclamation runs every commit, but the pin
  // holds the floor at epoch 1, so its versions survive.
  for (Tick now = 1; now <= ds.duration(); ++now) {
    rig.fr->AdvanceTo(now);
    for (const UpdateEvent& e : ds.ticks[now]) rig.fr->Apply(e);
    rig.Commit();
  }
  EXPECT_EQ(rig.snapshots.committed_epoch(), 1u + 30u);
  EXPECT_EQ(rig.snapshots.reclaim_floor(), 1u);

  const FrEngine::QueryResult late =
      mvcc::SnapshotFrQuery(*rig.fr, old_pin, 3, rho, 25.0);
  EXPECT_EQ(ResultTranscript(late, 3), ResultTranscript(reference, 3));

  // Releasing the pin lets the next commit reclaim everything below the
  // newest epoch: live versions shrink, the cumulative retired count
  // jumps (the pin was the only thing keeping 30 epochs of history).
  const int64_t live_held = rig.snapshots.live_versions();
  const int64_t retired_held = rig.snapshots.retired_versions();
  old_pin.Release();
  EXPECT_EQ(rig.snapshots.active_pins(), 0);
  rig.fr->AdvanceTo(ds.duration() + 1);
  rig.Commit();
  EXPECT_EQ(rig.snapshots.reclaim_floor(),
            rig.snapshots.committed_epoch());
  EXPECT_LT(rig.snapshots.live_versions(), live_held);
  EXPECT_GT(rig.snapshots.retired_versions(), retired_held);
}

TEST(MvccInterleaveTest, CancelledSnapshotQueryReleasesPinCleanly) {
  MvccRig rig;
  for (const UpdateEvent& e : MakeUniformInserts(200, kExtent, 1.5, 9)) {
    rig.fr->Apply(e);
  }
  rig.Commit();
  const double rho = 2.0 * 200 / (kExtent * kExtent);

  CancelToken token;
  token.Cancel();
  QueryControl ctl;
  ctl.token = &token;
  {
    mvcc::Snapshot snap = rig.snapshots.Pin();
    EXPECT_THROW(mvcc::SnapshotFrQuery(*rig.fr, snap, 2, rho, 25.0, ctl),
                 CancelledError);
  }  // RAII pin release on unwind
  EXPECT_EQ(rig.snapshots.active_pins(), 0);

  // The cancelled read left no state behind: an uncontrolled snapshot
  // query answers exactly like the live serialized engine.
  const FrEngine::QueryResult want = rig.fr->Query(2, rho, 25.0);
  mvcc::Snapshot snap = rig.snapshots.Pin();
  const FrEngine::QueryResult got =
      mvcc::SnapshotFrQuery(*rig.fr, snap, 2, rho, 25.0);
  EXPECT_EQ(ResultTranscript(got, 2), ResultTranscript(want, 2));
}

TEST(MvccInterleaveTest, PinBeforeFirstCommitThrows) {
  mvcc::SnapshotManager snapshots;
  EXPECT_THROW(snapshots.Pin(), std::logic_error);
}

TEST(MvccInterleaveTest, HorizonValidatesAgainstFrozenClockNotLive) {
  MvccRig rig(IndexKind::kTprTree, /*horizon=*/10);
  for (const UpdateEvent& e : MakeUniformInserts(50, kExtent, 1.5, 5)) {
    rig.fr->Apply(e);
  }
  rig.Commit();
  mvcc::Snapshot old_snap = rig.snapshots.Pin();
  EXPECT_EQ(mvcc::SnapshotFrNow(old_snap), 0);

  rig.fr->AdvanceTo(12);
  rig.Commit();

  const double rho = 1.0 * 50 / (kExtent * kExtent);
  // q_t = 12 is inside the live horizon [12, 22] but outside the frozen
  // snapshot's [0, 10]: the frozen clock governs.
  EXPECT_THROW(mvcc::SnapshotFrQuery(*rig.fr, old_snap, 12, rho, 20.0),
               HorizonError);
  EXPECT_NO_THROW(mvcc::SnapshotFrQuery(*rig.fr, old_snap, 8, rho, 20.0));

  mvcc::Snapshot fresh = rig.snapshots.Pin();
  EXPECT_EQ(mvcc::SnapshotFrNow(fresh), 12);
  EXPECT_NO_THROW(mvcc::SnapshotFrQuery(*rig.fr, fresh, 12, rho, 20.0));
}

TEST(MvccInterleaveTest, ReleasedSnapshotRefusesQueries) {
  MvccRig rig;
  rig.Commit();
  mvcc::Snapshot snap = rig.snapshots.Pin();
  snap.Release();
  EXPECT_FALSE(snap.valid());
  EXPECT_THROW(mvcc::SnapshotFrQuery(*rig.fr, snap, 0, 0.001, 20.0),
               std::logic_error);
}

}  // namespace
}  // namespace pdr
