#include "pdr/core/paper_config.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace pdr {
namespace {

TEST(PaperConfigTest, HorizonIsUPlusW) {
  PaperConfig config;
  EXPECT_EQ(config.horizon(), 120);
  config.max_update_interval = 45;
  config.prediction_window = 15;
  EXPECT_EQ(config.horizon(), 60);
}

TEST(PaperConfigTest, RhoFormulaMatchesPaper) {
  // rho = N * varrho / 10^6 (Section 7): CH500K at varrho in {1..5} spans
  // 0.5 .. 2.5, the range the paper quotes.
  PaperConfig config;
  EXPECT_DOUBLE_EQ(config.RhoFor(500'000, 1), 0.5);
  EXPECT_DOUBLE_EQ(config.RhoFor(500'000, 5), 2.5);
  EXPECT_DOUBLE_EQ(config.RhoFor(100'000, 2), 0.2);
}

TEST(PaperConfigTest, BufferPagesTenPercentOfDataset) {
  PaperConfig config;
  // 100K objects * 40 B = 4 MB; 10% = 400 KB = ~97 pages of 4 KB.
  EXPECT_EQ(config.BufferPagesFor(100'000), 97u);
  // Tiny datasets clamp to the minimum.
  EXPECT_EQ(config.BufferPagesFor(100), 16u);
}

TEST(PaperConfigTest, MemoryBudgetsMatchPaperQuotes) {
  // The paper quotes ~2.4 MB for the default histogram and ~1.0 MB for
  // the default polynomial model; our reconstruction must reproduce both.
  PaperConfig config;
  const double dh_mb = 10000.0 * (config.horizon() + 1) * 2 / 1e6;
  EXPECT_NEAR(dh_mb, 2.42, 0.01);
  const double pa_mb = 100.0 * 21 * (config.horizon() + 1) * 4 / 1e6;
  EXPECT_NEAR(pa_mb, 1.02, 0.01);
}

TEST(PaperConfigTest, ToStringMentionsKeyValues) {
  const std::string s = PaperConfig().ToString();
  EXPECT_NE(s.find("1000"), std::string::npos);
  EXPECT_NE(s.find("120"), std::string::npos);
  EXPECT_NE(s.find("10 ms"), std::string::npos);
}

TEST(PaperConfigTest, BenchScaleFromEnv) {
  unsetenv("PDR_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 0.1);
  setenv("PDR_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 0.5);
  setenv("PDR_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 0.1);
  unsetenv("PDR_BENCH_SCALE");
}

}  // namespace
}  // namespace pdr
