#include "pdr/bx/zcurve.h"

#include <gtest/gtest.h>

#include "pdr/common/random.h"

namespace pdr {
namespace {

TEST(ZEncodeTest, SmallValues) {
  EXPECT_EQ(ZEncode(0, 0), 0u);
  EXPECT_EQ(ZEncode(1, 0), 1u);  // x occupies even (low) bit positions
  EXPECT_EQ(ZEncode(0, 1), 2u);
  EXPECT_EQ(ZEncode(1, 1), 3u);
  EXPECT_EQ(ZEncode(2, 0), 4u);
  EXPECT_EQ(ZEncode(3, 3), 15u);
}

TEST(ZEncodeTest, RoundTrip) {
  Rng rng(91);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.UniformInt(0, kZMaxCoord));
    const uint32_t y = static_cast<uint32_t>(rng.UniformInt(0, kZMaxCoord));
    uint32_t rx, ry;
    ZDecode(ZEncode(x, y), &rx, &ry);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
  }
}

TEST(ZEncodeTest, MaxCoordinate) {
  const uint64_t z = ZEncode(kZMaxCoord, kZMaxCoord);
  EXPECT_EQ(z, (1ull << (2 * kZBits)) - 1);
}

TEST(ZEncodeTest, QuadrantsAreContiguous) {
  // An aligned 2^k x 2^k square covers exactly 4^k consecutive z values.
  for (uint32_t size : {2u, 4u, 8u, 64u}) {
    const uint32_t x0 = size * 3, y0 = size * 5;  // aligned origin
    const uint64_t z0 = ZEncode(x0, y0);
    uint64_t max_z = z0;
    uint64_t min_z = z0;
    for (uint32_t dy = 0; dy < size; ++dy) {
      for (uint32_t dx = 0; dx < size; ++dx) {
        const uint64_t z = ZEncode(x0 + dx, y0 + dy);
        min_z = std::min(min_z, z);
        max_z = std::max(max_z, z);
      }
    }
    EXPECT_EQ(min_z, z0);
    EXPECT_EQ(max_z - min_z + 1, static_cast<uint64_t>(size) * size);
  }
}

TEST(ZDecomposeTest, SingleCell) {
  const auto intervals = ZDecomposeWindow(5, 9, 5, 9);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].lo, ZEncode(5, 9));
  EXPECT_EQ(intervals[0].hi, ZEncode(5, 9));
}

TEST(ZDecomposeTest, AlignedSquareIsOneInterval) {
  const auto intervals = ZDecomposeWindow(8, 8, 15, 15);  // aligned 8x8
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].hi - intervals[0].lo + 1, 64u);
}

TEST(ZDecomposeTest, IntervalsAreSortedAndDisjoint) {
  const auto intervals = ZDecomposeWindow(3, 7, 40, 29, 1 << 20);
  for (size_t i = 1; i < intervals.size(); ++i) {
    EXPECT_GT(intervals[i].lo, intervals[i - 1].hi + 1)
        << "intervals must be sorted with gaps (else they would merge)";
  }
}

TEST(ZDecomposeTest, ExactCoverageWithoutBudget) {
  // With an unbounded budget, the union of intervals is exactly the
  // window's cells.
  Rng rng(92);
  for (int iter = 0; iter < 10; ++iter) {
    const uint32_t x_lo = static_cast<uint32_t>(rng.UniformInt(0, 50));
    const uint32_t y_lo = static_cast<uint32_t>(rng.UniformInt(0, 50));
    const uint32_t x_hi = x_lo + static_cast<uint32_t>(rng.UniformInt(0, 20));
    const uint32_t y_hi = y_lo + static_cast<uint32_t>(rng.UniformInt(0, 20));
    const auto intervals =
        ZDecomposeWindow(x_lo, y_lo, x_hi, y_hi, 1 << 20);
    uint64_t covered = 0;
    for (const ZInterval& iv : intervals) covered += iv.hi - iv.lo + 1;
    const uint64_t expected = static_cast<uint64_t>(x_hi - x_lo + 1) *
                              (y_hi - y_lo + 1);
    EXPECT_EQ(covered, expected);
    // Every covered z maps back into the window.
    for (const ZInterval& iv : intervals) {
      for (uint64_t z = iv.lo; z <= iv.hi; ++z) {
        uint32_t x, y;
        ZDecode(z, &x, &y);
        EXPECT_GE(x, x_lo);
        EXPECT_LE(x, x_hi);
        EXPECT_GE(y, y_lo);
        EXPECT_LE(y, y_hi);
      }
    }
  }
}

TEST(ZDecomposeTest, BudgetedDecompositionIsSuperset) {
  // With a small budget, intervals may cover extra cells but never miss
  // a window cell.
  const uint32_t x_lo = 3, y_lo = 5, x_hi = 77, y_hi = 60;
  const auto intervals = ZDecomposeWindow(x_lo, y_lo, x_hi, y_hi, 8);
  const auto covered = [&](uint64_t z) {
    for (const ZInterval& iv : intervals) {
      if (z >= iv.lo && z <= iv.hi) return true;
    }
    return false;
  };
  for (uint32_t y = y_lo; y <= y_hi; ++y) {
    for (uint32_t x = x_lo; x <= x_hi; ++x) {
      EXPECT_TRUE(covered(ZEncode(x, y))) << x << "," << y;
    }
  }
}

TEST(ZDecomposeTest, BudgetLimitsIntervalCount) {
  const auto intervals = ZDecomposeWindow(1, 1, 1000, 999, 32);
  // The budget is approximate (recursion in flight may add a few), but
  // the count stays the same order of magnitude.
  EXPECT_LE(intervals.size(), 64u);
}

}  // namespace
}  // namespace pdr
