#include <gtest/gtest.h>

#include "pdr/common/random.h"
#include "pdr/storage/buffer_pool.h"
#include "pdr/storage/pager.h"

namespace pdr {
namespace {

TEST(PagerTest, AllocateZeroedSequentialIds) {
  MemPager pager;
  const PageId a = pager.Allocate();
  const PageId b = pager.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  for (std::byte byte : pager.PageAt(a).bytes) {
    EXPECT_EQ(byte, std::byte{0});
  }
  EXPECT_EQ(pager.allocated_pages(), 2u);
  EXPECT_EQ(pager.live_pages(), 2u);
}

TEST(PagerTest, FreeAndReuseZeroesPage) {
  MemPager pager;
  const PageId a = pager.Allocate();
  pager.PageAt(a).bytes[0] = std::byte{0xAB};
  pager.Free(a);
  EXPECT_EQ(pager.live_pages(), 0u);
  const PageId b = pager.Allocate();
  EXPECT_EQ(b, a);  // id reused
  EXPECT_EQ(pager.PageAt(b).bytes[0], std::byte{0});
}

TEST(PagerTest, FreeRejectsOutOfRangeId) {
  MemPager pager;
  pager.Allocate();
  EXPECT_THROW(pager.Free(1), std::invalid_argument);
  EXPECT_THROW(pager.Free(kInvalidPageId), std::invalid_argument);
  EXPECT_EQ(pager.live_pages(), 1u);  // nothing was freed
}

TEST(PagerTest, FreeRejectsDoubleFree) {
  MemPager pager;
  const PageId a = pager.Allocate();
  const PageId b = pager.Allocate();
  pager.Free(a);
  EXPECT_THROW(pager.Free(a), std::invalid_argument);
  // The free list must not hold `a` twice: the next two allocations give
  // two distinct pages.
  EXPECT_EQ(pager.Allocate(), a);
  const PageId c = pager.Allocate();
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
}

TEST(PagerTest, FreedIdBecomesFreeableAgainAfterReuse) {
  MemPager pager;
  const PageId a = pager.Allocate();
  pager.Free(a);
  EXPECT_EQ(pager.Allocate(), a);
  pager.Free(a);  // no throw: the id is live again
  EXPECT_EQ(pager.live_pages(), 0u);
}

TEST(PagerTest, ReadWriteRejectUnallocatedId) {
  MemPager pager;
  pager.Allocate();
  Page page;
  EXPECT_THROW(pager.ReadPage(7, &page), std::invalid_argument);
  EXPECT_THROW(pager.WritePage(7, page), std::invalid_argument);
}

TEST(PagerTest, RestoreValidatesFreeList) {
  MemPager pager;
  EXPECT_THROW(pager.Restore(2, {5}), std::invalid_argument);   // out of range
  EXPECT_THROW(pager.Restore(3, {1, 1}), std::invalid_argument);  // duplicate
  pager.Restore(3, {1});
  EXPECT_EQ(pager.allocated_pages(), 3u);
  EXPECT_EQ(pager.live_pages(), 2u);
  EXPECT_EQ(pager.Allocate(), 1u);
}

TEST(PagerTest, PageAsTypedView) {
  MemPager pager;
  const PageId id = pager.Allocate();
  struct Layout {
    uint64_t a;
    double b;
  };
  auto* layout = pager.PageAt(id).As<Layout>();
  layout->a = 42;
  layout->b = 2.5;
  EXPECT_EQ(pager.PageAt(id).As<Layout>()->a, 42u);
  EXPECT_DOUBLE_EQ(pager.PageAt(id).As<Layout>()->b, 2.5);
}

TEST(BufferPoolTest, CreateFetchRoundTrip) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  PageId id;
  {
    auto ref = pool.Create(&id);
    ref->bytes[0] = std::byte{0x7F};
  }
  auto ref = pool.Fetch(id);
  EXPECT_EQ(ref->bytes[0], std::byte{0x7F});
  EXPECT_EQ(ref.id(), id);
}

TEST(BufferPoolTest, HitsDoNotCountAsPhysicalReads) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  const PageId id = pager.Allocate();
  pool.ResetStats();
  { auto ref = pool.Fetch(id); }
  { auto ref = pool.Fetch(id); }
  { auto ref = pool.Fetch(id); }
  EXPECT_EQ(pool.stats().logical_reads, 3);
  EXPECT_EQ(pool.stats().physical_reads, 1);
}

TEST(BufferPoolTest, EvictionIsLru) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(pager.Allocate());
  for (PageId id : ids) {
    auto ref = pool.Fetch(id);
  }
  // Touch id[0] so id[1] becomes the LRU victim.
  { auto ref = pool.Fetch(ids[0]); }
  const PageId extra = pager.Allocate();
  { auto ref = pool.Fetch(extra); }  // evicts ids[1]
  pool.ResetStats();
  { auto ref = pool.Fetch(ids[0]); }
  EXPECT_EQ(pool.stats().physical_reads, 0);  // still resident
  { auto ref = pool.Fetch(ids[1]); }
  EXPECT_EQ(pool.stats().physical_reads, 1);  // was evicted
}

TEST(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  const PageId victim = pager.Allocate();
  {
    auto ref = pool.FetchMut(victim);
    ref->bytes[5] = std::byte{0xEE};
  }
  // Flood the pool to force eviction of `victim`.
  for (int i = 0; i < 6; ++i) {
    const PageId id = pager.Allocate();
    auto ref = pool.Fetch(id);
  }
  EXPECT_EQ(pager.PageAt(victim).bytes[5], std::byte{0xEE});
  EXPECT_GE(pool.stats().writebacks, 1);
}

TEST(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  const PageId pinned_id = pager.Allocate();
  auto pinned = pool.FetchMut(pinned_id);
  pinned->bytes[0] = std::byte{0x11};
  // Three more frames cycle through while the pin is held.
  for (int i = 0; i < 9; ++i) {
    const PageId id = pager.Allocate();
    auto ref = pool.Fetch(id);
  }
  EXPECT_EQ(pinned->bytes[0], std::byte{0x11});
  pinned.Reset();
}

TEST(BufferPoolTest, MoveSemanticsOfPageRef) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  const PageId id = pager.Allocate();
  auto a = pool.Fetch(id);
  auto b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(b.id(), id);
}

TEST(BufferPoolTest, FlushAllPersistsDirtyPages) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  const PageId id = pager.Allocate();
  {
    auto ref = pool.FetchMut(id);
    ref->bytes[1] = std::byte{0x42};
  }
  pool.FlushAll();
  EXPECT_EQ(pager.PageAt(id).bytes[1], std::byte{0x42});
}

TEST(BufferPoolTest, ClearDropsResidencyButKeepsData) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  const PageId id = pager.Allocate();
  {
    auto ref = pool.FetchMut(id);
    ref->bytes[2] = std::byte{0x99};
  }
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 0u);
  pool.ResetStats();
  auto ref = pool.Fetch(id);
  EXPECT_EQ(pool.stats().physical_reads, 1);  // cold again
  EXPECT_EQ(ref->bytes[2], std::byte{0x99});  // but data survived
}

TEST(BufferPoolTest, DiscardForgetsPage) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  const PageId id = pager.Allocate();
  {
    auto ref = pool.FetchMut(id);
    ref->bytes[0] = std::byte{0x55};
  }
  pool.Discard(id);
  EXPECT_EQ(pool.resident_pages(), 0u);
  // Discard drops the dirty copy without writeback (used after Free).
  EXPECT_EQ(pager.PageAt(id).bytes[0], std::byte{0});
}

TEST(BufferPoolTest, CreateDoesNotChargeRead) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  pool.ResetStats();
  PageId id;
  { auto ref = pool.Create(&id); }
  EXPECT_EQ(pool.stats().physical_reads, 0);
}

TEST(BufferPoolTest, RandomAccessModelCheck) {
  // Model-based test: random mix of creates, reads, writes, and cache
  // drops; page contents must always match a shadow model, and hit/miss
  // accounting must stay consistent (misses <= logical reads; a fetch
  // right after a fetch of the same page is always a hit).
  MemPager pager;
  BufferPool pool(&pager, 8);
  Rng rng(404);
  std::vector<PageId> pages;
  std::vector<uint8_t> shadow;  // first byte of each page
  for (int step = 0; step < 5000; ++step) {
    const int action = static_cast<int>(rng.UniformInt(0, 9));
    if (action == 0 || pages.empty()) {
      PageId id;
      auto ref = pool.Create(&id);
      const uint8_t v = static_cast<uint8_t>(rng.UniformInt(0, 255));
      ref->bytes[0] = std::byte{v};
      pages.push_back(id);
      shadow.push_back(v);
    } else if (action <= 5) {  // read + verify
      const size_t i = rng.UniformInt(0, pages.size() - 1);
      auto ref = pool.Fetch(pages[i]);
      ASSERT_EQ(ref->bytes[0], std::byte{shadow[i]}) << "step " << step;
    } else if (action <= 8) {  // write
      const size_t i = rng.UniformInt(0, pages.size() - 1);
      auto ref = pool.FetchMut(pages[i]);
      const uint8_t v = static_cast<uint8_t>(rng.UniformInt(0, 255));
      ref->bytes[0] = std::byte{v};
      shadow[i] = v;
    } else {  // drop all caches
      pool.Clear();
    }
  }
  const IoStats& stats = pool.stats();
  EXPECT_LE(stats.physical_reads, stats.logical_reads);
  // Final verification pass through a cold cache.
  pool.Clear();
  for (size_t i = 0; i < pages.size(); ++i) {
    auto ref = pool.Fetch(pages[i]);
    EXPECT_EQ(ref->bytes[0], std::byte{shadow[i]}) << "page " << i;
  }
}

TEST(BufferPoolTest, BackToBackFetchIsAlwaysHit) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  const PageId id = pager.Allocate();
  { auto ref = pool.Fetch(id); }
  pool.ResetStats();
  { auto ref = pool.Fetch(id); }
  EXPECT_EQ(pool.stats().physical_reads, 0);
  EXPECT_EQ(pool.stats().logical_reads, 1);
}

TEST(BufferPoolTest, DirtyPagesTracksUnflushedFrames) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  const PageId a = pager.Allocate();
  const PageId b = pager.Allocate();
  EXPECT_EQ(pool.dirty_pages(), 0u);
  { auto ref = pool.FetchMut(a); }
  { auto ref = pool.FetchMut(b); }
  { auto ref = pool.Fetch(a); }  // read does not re-dirty
  EXPECT_EQ(pool.dirty_pages(), 2u);
  pool.FlushAll();
  EXPECT_EQ(pool.dirty_pages(), 0u);
}

TEST(IoStatsTest, DifferenceAndCost) {
  IoStats before{10, 4, 1};
  IoStats after{25, 9, 3};
  const IoStats delta = after - before;
  EXPECT_EQ(delta.logical_reads, 15);
  EXPECT_EQ(delta.physical_reads, 5);
  EXPECT_EQ(delta.writebacks, 2);
  EXPECT_DOUBLE_EQ(delta.ReadCostMs(10.0), 50.0);
}

}  // namespace
}  // namespace pdr
