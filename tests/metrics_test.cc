#include "pdr/core/metrics.h"

#include <gtest/gtest.h>

namespace pdr {
namespace {

Region Box(double x1, double y1, double x2, double y2) {
  return Region(std::vector<Rect>{Rect(x1, y1, x2, y2)});
}

TEST(MetricsTest, IdenticalRegionsAreZeroError) {
  const Region r = Box(0, 0, 10, 10);
  const AccuracyMetrics m = CompareRegions(r, r);
  EXPECT_DOUBLE_EQ(m.false_positive_ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.false_negative_ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.truth_area, 100.0);
  EXPECT_DOUBLE_EQ(m.reported_area, 100.0);
  EXPECT_DOUBLE_EQ(m.Jaccard(), 1.0);
}

TEST(MetricsTest, HandComputedOverlap) {
  // Truth 10x10 at origin; report shifted by 5 in x: overlap 50.
  const AccuracyMetrics m =
      CompareRegions(Box(0, 0, 10, 10), Box(5, 0, 15, 10));
  EXPECT_DOUBLE_EQ(m.overlap_area, 50.0);
  EXPECT_DOUBLE_EQ(m.false_positive_ratio, 0.5);  // 50 spurious / 100 true
  EXPECT_DOUBLE_EQ(m.false_negative_ratio, 0.5);  // 50 missed / 100 true
  EXPECT_NEAR(m.Jaccard(), 50.0 / 150.0, 1e-12);
}

TEST(MetricsTest, FalsePositiveRatioCanExceedOne) {
  // Tiny truth, huge report: r_fp > 100% (the property the paper notes).
  const AccuracyMetrics m = CompareRegions(Box(0, 0, 1, 1), Box(0, 0, 10, 10));
  EXPECT_DOUBLE_EQ(m.false_positive_ratio, 99.0);
  EXPECT_DOUBLE_EQ(m.false_negative_ratio, 0.0);
}

TEST(MetricsTest, FalseNegativeRatioNeverExceedsOne) {
  const AccuracyMetrics m = CompareRegions(Box(0, 0, 10, 10), Region());
  EXPECT_DOUBLE_EQ(m.false_negative_ratio, 1.0);
  EXPECT_DOUBLE_EQ(m.false_positive_ratio, 0.0);
}

TEST(MetricsTest, EmptyTruthWithEmptyReportIsPerfect) {
  const AccuracyMetrics m = CompareRegions(Region(), Region(), 100.0);
  EXPECT_DOUBLE_EQ(m.false_positive_ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.false_negative_ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.Jaccard(), 1.0);
}

TEST(MetricsTest, EmptyTruthNonEmptyReportPenalizedByDomain) {
  const AccuracyMetrics m =
      CompareRegions(Region(), Box(0, 0, 10, 10), 1000.0);
  EXPECT_DOUBLE_EQ(m.false_positive_ratio, 0.1);
  EXPECT_DOUBLE_EQ(m.false_negative_ratio, 0.0);
}

TEST(MetricsTest, MultiRectRegions) {
  Region truth;
  truth.Add(Rect(0, 0, 2, 2));
  truth.Add(Rect(8, 8, 10, 10));
  Region reported;
  reported.Add(Rect(0, 0, 2, 2));   // finds the first blob
  reported.Add(Rect(20, 20, 22, 22));  // hallucinates a third one
  const AccuracyMetrics m = CompareRegions(truth, reported);
  EXPECT_DOUBLE_EQ(m.truth_area, 8.0);
  EXPECT_DOUBLE_EQ(m.overlap_area, 4.0);
  EXPECT_DOUBLE_EQ(m.false_positive_ratio, 0.5);
  EXPECT_DOUBLE_EQ(m.false_negative_ratio, 0.5);
}

TEST(MetricsTest, OverlappingInputRectsDoNotInflateAreas) {
  Region truth;
  truth.Add(Rect(0, 0, 4, 4));
  truth.Add(Rect(0, 0, 4, 4));  // duplicate
  const AccuracyMetrics m = CompareRegions(truth, Box(0, 0, 4, 4));
  EXPECT_DOUBLE_EQ(m.truth_area, 16.0);
  EXPECT_DOUBLE_EQ(m.false_positive_ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.false_negative_ratio, 0.0);
}

}  // namespace
}  // namespace pdr
