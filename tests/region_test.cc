#include "pdr/common/region.h"

#include <gtest/gtest.h>

#include "pdr/common/random.h"

namespace pdr {
namespace {

TEST(UnionAreaTest, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(UnionArea({}), 0.0);
  EXPECT_DOUBLE_EQ(UnionArea({Rect(0, 0, 2, 3)}), 6.0);
}

TEST(UnionAreaTest, DisjointRects) {
  EXPECT_DOUBLE_EQ(UnionArea({Rect(0, 0, 1, 1), Rect(5, 5, 7, 6)}), 3.0);
}

TEST(UnionAreaTest, OverlappingRects) {
  // Two 2x2 squares overlapping in a 1x1 square.
  EXPECT_DOUBLE_EQ(UnionArea({Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)}), 7.0);
}

TEST(UnionAreaTest, NestedRects) {
  EXPECT_DOUBLE_EQ(UnionArea({Rect(0, 0, 4, 4), Rect(1, 1, 2, 2)}), 16.0);
}

TEST(UnionAreaTest, IdenticalDuplicates) {
  EXPECT_DOUBLE_EQ(
      UnionArea({Rect(0, 0, 1, 1), Rect(0, 0, 1, 1), Rect(0, 0, 1, 1)}),
      1.0);
}

TEST(UnionAreaTest, SharedEdgeNoDoubleCount) {
  EXPECT_DOUBLE_EQ(UnionArea({Rect(0, 0, 1, 1), Rect(1, 0, 2, 1)}), 2.0);
}

TEST(RegionTest, AddIgnoresEmpty) {
  Region r;
  r.Add(Rect(1, 1, 1, 5));
  r.Add(Rect(3, 3, 2, 4));
  EXPECT_TRUE(r.IsEmpty());
  r.Add(Rect(0, 0, 1, 1));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RegionTest, ContainsHalfOpen) {
  Region r(std::vector<Rect>{Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)});
  EXPECT_TRUE(r.Contains({0.5, 0.5}));
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_FALSE(r.Contains({1, 1}));  // half-open
  EXPECT_TRUE(r.Contains({2.5, 2.5}));
  EXPECT_FALSE(r.Contains({1.5, 1.5}));
}

TEST(RegionTest, BoundingBox) {
  Region r(std::vector<Rect>{Rect(0, 0, 1, 1), Rect(5, -2, 6, 0.5)});
  EXPECT_EQ(r.BoundingBox(), Rect(0, -2, 6, 1));
  EXPECT_TRUE(Region().BoundingBox().Empty());
}

TEST(RegionTest, ClippedTo) {
  Region r(std::vector<Rect>{Rect(0, 0, 10, 10)});
  const Region clipped = r.ClippedTo(Rect(5, 5, 20, 20));
  EXPECT_DOUBLE_EQ(clipped.Area(), 25.0);
}

TEST(RegionTest, CoalescedPreservesAreaAndDisjoint) {
  Rng rng(1234);
  for (int iter = 0; iter < 20; ++iter) {
    Region r;
    const int n = 1 + static_cast<int>(rng.UniformInt(0, 30));
    for (int i = 0; i < n; ++i) {
      const double x = rng.Uniform(0, 90);
      const double y = rng.Uniform(0, 90);
      r.Add(Rect(x, y, x + rng.Uniform(1, 10), y + rng.Uniform(1, 10)));
    }
    const Region c = r.Coalesced();
    EXPECT_NEAR(c.Area(), r.Area(), 1e-9);
    // Disjointness: sum of rect areas equals union area.
    double sum = 0;
    for (const Rect& rect : c.rects()) sum += rect.Area();
    EXPECT_NEAR(sum, c.Area(), 1e-9);
  }
}

TEST(RegionTest, CoalescedPreservesMembership) {
  Rng rng(99);
  Region r;
  for (int i = 0; i < 25; ++i) {
    const double x = rng.Uniform(0, 50);
    const double y = rng.Uniform(0, 50);
    r.Add(Rect(x, y, x + rng.Uniform(0.5, 8), y + rng.Uniform(0.5, 8)));
  }
  const Region c = r.Coalesced();
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p{rng.Uniform(0, 60), rng.Uniform(0, 60)};
    EXPECT_EQ(r.Contains(p), c.Contains(p)) << p.ToString();
  }
}

TEST(RegionTest, CoalescedMergesAdjacentSlabs) {
  // Two rects that together form one bigger rect must merge into one.
  Region r(std::vector<Rect>{Rect(0, 0, 1, 2), Rect(1, 0, 2, 2)});
  const Region c = r.Coalesced();
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.rects()[0], Rect(0, 0, 2, 2));
}

TEST(RegionTest, CoalescedCanonicalAcrossOrder) {
  const std::vector<Rect> rects = {Rect(0, 0, 2, 2), Rect(1, 1, 3, 3),
                                   Rect(2, 0, 4, 1)};
  Region a;
  for (const Rect& r : rects) a.Add(r);
  Region b;
  for (auto it = rects.rbegin(); it != rects.rend(); ++it) b.Add(*it);
  const Region ca = a.Coalesced();
  const Region cb = b.Coalesced();
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca.rects()[i], cb.rects()[i]);
  }
}

TEST(IntersectionAreaTest, Simple) {
  Region a(std::vector<Rect>{Rect(0, 0, 2, 2)});
  Region b(std::vector<Rect>{Rect(1, 1, 3, 3)});
  EXPECT_DOUBLE_EQ(IntersectionArea(a, b), 1.0);
  EXPECT_DOUBLE_EQ(DifferenceArea(a, b), 3.0);
  EXPECT_DOUBLE_EQ(DifferenceArea(b, a), 3.0);
  EXPECT_DOUBLE_EQ(SymmetricDifferenceArea(a, b), 6.0);
}

TEST(IntersectionAreaTest, DisjointAndEmpty) {
  Region a(std::vector<Rect>{Rect(0, 0, 1, 1)});
  Region b(std::vector<Rect>{Rect(5, 5, 6, 6)});
  EXPECT_DOUBLE_EQ(IntersectionArea(a, b), 0.0);
  EXPECT_DOUBLE_EQ(IntersectionArea(a, Region()), 0.0);
  EXPECT_DOUBLE_EQ(IntersectionArea(Region(), Region()), 0.0);
}

TEST(IntersectionAreaTest, SelfIntersectionIsArea) {
  Region a(std::vector<Rect>{Rect(0, 0, 2, 2), Rect(1, 1, 3, 3), Rect(10, 0, 11, 4)});
  EXPECT_NEAR(IntersectionArea(a, a), a.Area(), 1e-9);
}

TEST(IntersectionAreaTest, OverlappingInputsWithinOneRegion) {
  // Internal overlap inside each region must not inflate the measure.
  Region a(std::vector<Rect>{Rect(0, 0, 2, 2), Rect(0, 0, 2, 2)});
  Region b(std::vector<Rect>{Rect(1, 0, 3, 2), Rect(1, 0, 3, 2)});
  EXPECT_DOUBLE_EQ(IntersectionArea(a, b), 2.0);
}

// Property: boolean-area identities hold against Monte-Carlo estimates.
TEST(RegionPropertyTest, AreasMatchMonteCarlo) {
  Rng rng(2024);
  for (int iter = 0; iter < 6; ++iter) {
    Region a, b;
    for (int i = 0; i < 12; ++i) {
      double x = rng.Uniform(0, 80), y = rng.Uniform(0, 80);
      a.Add(Rect(x, y, x + rng.Uniform(2, 15), y + rng.Uniform(2, 15)));
      x = rng.Uniform(0, 80);
      y = rng.Uniform(0, 80);
      b.Add(Rect(x, y, x + rng.Uniform(2, 15), y + rng.Uniform(2, 15)));
    }
    const double domain = 100.0 * 100.0;
    int in_a = 0, in_b = 0, in_both = 0;
    const int samples = 40000;
    for (int s = 0; s < samples; ++s) {
      const Vec2 p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
      const bool pa = a.Contains(p);
      const bool pb = b.Contains(p);
      in_a += pa;
      in_b += pb;
      in_both += pa && pb;
    }
    const double tol = 0.03 * domain;  // ~3 sigma for these sizes
    EXPECT_NEAR(a.Area(), domain * in_a / samples, tol);
    EXPECT_NEAR(b.Area(), domain * in_b / samples, tol);
    EXPECT_NEAR(IntersectionArea(a, b), domain * in_both / samples, tol);
  }
}

TEST(RegionDifferenceTest, BasicShapes) {
  const Region a(std::vector<Rect>{Rect(0, 0, 4, 4)});
  const Region b(std::vector<Rect>{Rect(2, 0, 6, 4)});
  const Region diff = RegionDifference(a, b);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff.rects()[0], Rect(0, 0, 2, 4));
  EXPECT_DOUBLE_EQ(diff.Area(), 8.0);
}

TEST(RegionDifferenceTest, HolePunch) {
  // Subtracting an interior rect leaves a ring (multiple rects).
  const Region a(std::vector<Rect>{Rect(0, 0, 10, 10)});
  const Region b(std::vector<Rect>{Rect(3, 3, 7, 7)});
  const Region diff = RegionDifference(a, b);
  EXPECT_DOUBLE_EQ(diff.Area(), 100.0 - 16.0);
  EXPECT_FALSE(diff.Contains({5, 5}));
  EXPECT_TRUE(diff.Contains({1, 1}));
  EXPECT_TRUE(diff.Contains({5, 1}));
}

TEST(RegionDifferenceTest, EmptyCases) {
  const Region a(std::vector<Rect>{Rect(0, 0, 2, 2)});
  EXPECT_TRUE(RegionDifference(Region(), a).IsEmpty());
  EXPECT_DOUBLE_EQ(RegionDifference(a, Region()).Area(), 4.0);
  EXPECT_TRUE(RegionDifference(a, a).IsEmpty());
}

TEST(RegionDifferenceTest, MembershipProperty) {
  Rng rng(555);
  for (int iter = 0; iter < 8; ++iter) {
    Region a, b;
    for (int i = 0; i < 10; ++i) {
      double x = rng.Uniform(0, 80), y = rng.Uniform(0, 80);
      a.Add(Rect(x, y, x + rng.Uniform(2, 15), y + rng.Uniform(2, 15)));
      x = rng.Uniform(0, 80);
      y = rng.Uniform(0, 80);
      b.Add(Rect(x, y, x + rng.Uniform(2, 15), y + rng.Uniform(2, 15)));
    }
    const Region diff = RegionDifference(a, b);
    const Region inter = RegionIntersection(a, b);
    EXPECT_NEAR(diff.Area(), DifferenceArea(a, b), 1e-9);
    EXPECT_NEAR(inter.Area(), IntersectionArea(a, b), 1e-9);
    for (int s = 0; s < 1500; ++s) {
      const Vec2 p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
      EXPECT_EQ(diff.Contains(p), a.Contains(p) && !b.Contains(p));
      EXPECT_EQ(inter.Contains(p), a.Contains(p) && b.Contains(p));
    }
  }
}

TEST(RegionIntersectionTest, BasicShapes) {
  const Region a(std::vector<Rect>{Rect(0, 0, 4, 4)});
  const Region b(std::vector<Rect>{Rect(2, 2, 6, 6)});
  const Region inter = RegionIntersection(a, b);
  ASSERT_EQ(inter.size(), 1u);
  EXPECT_EQ(inter.rects()[0], Rect(2, 2, 4, 4));
  EXPECT_TRUE(RegionIntersection(a, Region()).IsEmpty());
}

// Exact (tolerance-free) validation: with integer coordinates every
// boolean measure can be checked against a unit-cell raster.
TEST(RegionPropertyTest, IntegerRasterExactness) {
  Rng rng(777);
  const int grid = 24;
  for (int iter = 0; iter < 15; ++iter) {
    Region a, b;
    for (int i = 0; i < 8; ++i) {
      const auto make = [&] {
        const int x = static_cast<int>(rng.UniformInt(0, grid - 2));
        const int y = static_cast<int>(rng.UniformInt(0, grid - 2));
        const int w = static_cast<int>(rng.UniformInt(1, grid - 1 - x));
        const int h = static_cast<int>(rng.UniformInt(1, grid - 1 - y));
        return Rect(x, y, x + w, y + h);
      };
      a.Add(make());
      b.Add(make());
    }
    // Rasterize on unit cells (cell (i,j) covered iff its center is in
    // the half-open region — exact for integer-aligned rects).
    int count_a = 0, count_b = 0, count_ab = 0, count_diff = 0;
    for (int j = 0; j < grid; ++j) {
      for (int i = 0; i < grid; ++i) {
        const Vec2 center{i + 0.5, j + 0.5};
        const bool in_a = a.Contains(center);
        const bool in_b = b.Contains(center);
        count_a += in_a;
        count_b += in_b;
        count_ab += in_a && in_b;
        count_diff += in_a && !in_b;
      }
    }
    EXPECT_DOUBLE_EQ(a.Area(), count_a);
    EXPECT_DOUBLE_EQ(b.Area(), count_b);
    EXPECT_DOUBLE_EQ(IntersectionArea(a, b), count_ab);
    EXPECT_DOUBLE_EQ(DifferenceArea(a, b), count_diff);
    EXPECT_DOUBLE_EQ(RegionDifference(a, b).Area(), count_diff);
    EXPECT_DOUBLE_EQ(RegionIntersection(a, b).Area(), count_ab);
    EXPECT_DOUBLE_EQ(a.Coalesced().Area(), count_a);
  }
}

TEST(RegionTest, ToStringSmoke) {
  Region r(std::vector<Rect>{Rect(0, 0, 1, 1)});
  EXPECT_NE(r.ToString().find("Region{"), std::string::npos);
}

}  // namespace
}  // namespace pdr
