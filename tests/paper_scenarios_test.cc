// Explicit constructions of the paper's motivating figures (Sections 1-3):
// answer loss (Fig. 1a / 3a), ambiguous answers (Fig. 1b / 3b), lack of
// local density (Fig. 1c / 3c), and the point-density example of Fig. 2 —
// each demonstrated against this library's implementations.

#include <gtest/gtest.h>

#include "pdr/pdr.h"

namespace pdr {
namespace {

// Shared setup: unit-style grid scaled by 10 (cells 10x10 over 100x100).
constexpr double kExtent = 100.0;
constexpr int kCells = 10;
constexpr double kL = 10.0;  // l-square == one grid cell, as in Fig. 1

DensityHistogram HistogramOf(const std::vector<Vec2>& positions) {
  DensityHistogram dh(
      {.extent = kExtent, .cells_per_side = kCells, .horizon = 2});
  for (ObjectId id = 0; id < positions.size(); ++id) {
    dh.Apply({0, id, std::nullopt, MotionState{positions[id], {0, 0}, 0}});
  }
  return dh;
}

Oracle OracleOf(const std::vector<Vec2>& positions) {
  Oracle oracle(kExtent);
  for (ObjectId id = 0; id < positions.size(); ++id) {
    oracle.Apply({0, id, std::nullopt, MotionState{positions[id], {0, 0}, 0}});
  }
  return oracle;
}

TEST(PaperScenarios, Fig1a_AnswerLossOfDenseCellQueries) {
  // Four objects clustered around a cell corner: the dashed l-square
  // centered at the corner holds all 4 (dense, threshold rho = 4/l^2),
  // but every grid cell holds only 1 object, so [4] reports nothing.
  const std::vector<Vec2> objs = {{48, 48}, {52, 48}, {48, 52}, {52, 52}};
  const double rho = 4.0 / (kL * kL);

  const Region cells = DenseCellQuery(HistogramOf(objs), 0, rho);
  EXPECT_TRUE(cells.IsEmpty()) << "dense-cell query must suffer answer loss";

  const Region pdr = OracleOf(objs).DenseRegions(0, rho, kL);
  EXPECT_FALSE(pdr.IsEmpty()) << "PDR must not lose the answer (Fig. 3a)";
  EXPECT_TRUE(pdr.Contains({50, 50}));
}

TEST(PaperScenarios, Fig1b_EdqAmbiguityVsPdrUniqueness) {
  // Two overlapping square placements each contain the threshold count.
  // EDQ must pick one (strategy-dependent); PDR reports every dense
  // point, covering both candidate centers — a unique, complete answer.
  const std::vector<Vec2> objs = {
      // overlap block (cell (3,3)): 3 objects shared by both squares
      {32, 32}, {34, 34}, {36, 36},
      // completes square A anchored at cells (2,2) (covers cells 2..3):
      // count(A) = 4, and A comes first in row-major scan order
      {25, 25},
      // two more in cell (4,4) make square B anchored at (3,3) strictly
      // denser: count(B) = 5, so densest-first prefers B over A
      {45, 45}, {46, 46}};
  const double l = 20.0;
  const double rho = 4.0 / (l * l);
  const DensityHistogram dh = HistogramOf(objs);

  const EdqResult a = EffectiveDensityQuery(dh, 0, rho, l,
                                            EdqStrategy::kDensestFirst);
  const EdqResult b =
      EffectiveDensityQuery(dh, 0, rho, l, EdqStrategy::kScanOrder);
  EXPECT_GT(a.candidate_squares, 1);
  EXPECT_GT(SymmetricDifferenceArea(a.region, b.region), 1.0)
      << "EDQ: two valid strategies, two different answers";

  // PDR: one deterministic answer containing every dense point of both.
  const Oracle oracle = OracleOf(objs);
  const Region pdr = oracle.DenseRegions(0, rho, l);
  // Both qualifying square centers are rho-dense and thus in the answer.
  for (const Vec2 center : {Vec2{35, 35}, Vec2{40, 40}}) {
    if (oracle.CountInSquare(0, center, l) >= 4) {
      EXPECT_TRUE(pdr.Contains(center)) << center.ToString();
    }
  }
  // Determinism: recomputing gives the identical region.
  const Region pdr2 = OracleOf(objs).DenseRegions(0, rho, l);
  EXPECT_NEAR(SymmetricDifferenceArea(pdr, pdr2), 0.0, 1e-12);
}

TEST(PaperScenarios, Fig1c_LocalDensityGuarantee) {
  // A cell with many objects piled in its left half is "dense" under
  // region density, but the point p at its right edge has an empty
  // neighborhood. PDR excludes p.
  std::vector<Vec2> objs;
  for (int i = 0; i < 12; ++i) {
    objs.push_back({41.0 + (i % 3), 42.0 + (i / 3) * 2.0});
  }
  const double rho = 8.0 / (kL * kL);

  // The dense-cell query reports the whole cell [40,50)^2...
  const Region cells = DenseCellQuery(HistogramOf(objs), 0, rho);
  const Vec2 p{49.9, 49.9};  // near the cell's top-right corner
  EXPECT_TRUE(cells.Contains(p))
      << "region-density method claims p is in a dense region";

  // ...but p's own neighborhood is (nearly) empty: PDR excludes it.
  const Oracle oracle = OracleOf(objs);
  EXPECT_LT(oracle.CountInSquare(0, p, kL), 8);
  const Region pdr = oracle.DenseRegions(0, rho, kL);
  EXPECT_FALSE(pdr.Contains(p))
      << "PDR must give local density guarantees (Fig. 3c)";
  // While genuinely dense points remain included.
  EXPECT_TRUE(pdr.Contains({42, 44}));
}

TEST(PaperScenarios, Fig2_PointDensityDefinition) {
  // Fig. 2: p's l-square neighborhood contains 3 objects => d_t(p)=3/l^2.
  const std::vector<Vec2> objs = {{50, 50}, {52, 53}, {47, 48}, {70, 70}};
  const Oracle oracle = OracleOf(objs);
  const Vec2 p{50, 50};
  EXPECT_EQ(oracle.CountInSquare(0, p, kL), 3);
  EXPECT_DOUBLE_EQ(oracle.PointDensity(0, p, kL), 3.0 / (kL * kL));
}

TEST(PaperScenarios, Definition1_EdgeSemantics) {
  // Right/top edges belong to the neighborhood; left/bottom do not.
  const double l = 10.0;
  const Vec2 p{50, 50};
  const std::vector<Vec2> on_right = {{55, 50}};
  const std::vector<Vec2> on_left = {{45, 50}};
  const std::vector<Vec2> on_top = {{50, 55}};
  const std::vector<Vec2> on_bottom = {{50, 45}};
  EXPECT_EQ(OracleOf(on_right).CountInSquare(0, p, l), 1);
  EXPECT_EQ(OracleOf(on_left).CountInSquare(0, p, l), 0);
  EXPECT_EQ(OracleOf(on_top).CountInSquare(0, p, l), 1);
  EXPECT_EQ(OracleOf(on_bottom).CountInSquare(0, p, l), 0);
}

TEST(PaperScenarios, DenseRegionsHaveArbitraryShapeAndSize) {
  // An L-shaped arrangement produces an L-ish dense region — impossible
  // for fixed-shape methods. Verify the PDR answer has more than one
  // maximal rectangle and a non-square bounding box mismatch.
  std::vector<Vec2> objs;
  for (int i = 0; i < 10; ++i) objs.push_back({20.0 + i * 2.0, 20.0});
  for (int i = 0; i < 10; ++i) objs.push_back({20.0, 20.0 + i * 2.0});
  const double rho = 2.0 / (kL * kL);
  const Region pdr = OracleOf(objs).DenseRegions(0, rho, kL);
  ASSERT_FALSE(pdr.IsEmpty());
  // The region is not a single rectangle: its area is well below its
  // bounding box's.
  EXPECT_LT(pdr.Area(), 0.8 * pdr.BoundingBox().Area());
}

TEST(PaperScenarios, SnapshotQueryDefinition4AgainstFr) {
  // The FR engine and the oracle implement Definition 4 identically on
  // the Fig. 1 scenarios (all objects static).
  const std::vector<Vec2> objs = {{48, 48}, {52, 48}, {48, 52}, {52, 52},
                                  {20, 80}, {21, 81}, {22, 80}, {20, 79}};
  const double rho = 4.0 / (kL * kL);
  FrEngine fr({.extent = kExtent, .histogram_side = kCells, .horizon = 2,
               .buffer_pages = 64, .io_ms = 10.0});
  for (ObjectId id = 0; id < objs.size(); ++id) {
    fr.Apply({0, id, std::nullopt, MotionState{objs[id], {0, 0}, 0}});
  }
  const Region got = fr.Query(0, rho, kL).region;
  const Region want = OracleOf(objs).DenseRegions(0, rho, kL);
  EXPECT_NEAR(SymmetricDifferenceArea(got, want), 0.0, 1e-9);
  EXPECT_TRUE(got.Contains({50, 50}));
  EXPECT_TRUE(got.Contains({21, 80}));
}

}  // namespace
}  // namespace pdr
