#include <gtest/gtest.h>

#include "pdr/baseline/dense_cell.h"
#include "pdr/baseline/edq.h"
#include "pdr/mobility/generator.h"

namespace pdr {
namespace {

DensityHistogram MakeHistogram(const std::vector<UpdateEvent>& events,
                               double extent, int m) {
  DensityHistogram dh({.extent = extent, .cells_per_side = m, .horizon = 2});
  for (const UpdateEvent& e : events) dh.Apply(e);
  return dh;
}

std::vector<UpdateEvent> PointsAt(const std::vector<Vec2>& positions) {
  std::vector<UpdateEvent> events;
  for (ObjectId id = 0; id < positions.size(); ++id) {
    events.push_back(
        {0, id, std::nullopt, MotionState{positions[id], {0, 0}, 0}});
  }
  return events;
}

TEST(DenseCellTest, ReportsOnlyCellsMeetingThreshold) {
  // 10x10 grid over [0,100): cell edge 10, area 100.
  // Put 5 objects in cell (2,3) and 2 in cell (7,7).
  std::vector<Vec2> positions;
  for (int i = 0; i < 5; ++i) positions.push_back({25.0 + i * 0.5, 35.0});
  positions.push_back({75, 75});
  positions.push_back({76, 76});
  const DensityHistogram dh = MakeHistogram(PointsAt(positions), 100.0, 10);
  // rho = 0.04 => threshold 4 objects per cell.
  const Region region = DenseCellQuery(dh, 0, 0.04);
  EXPECT_TRUE(region.Contains({25, 35}));
  EXPECT_FALSE(region.Contains({75, 75}));
  EXPECT_DOUBLE_EQ(region.Area(), 100.0);
}

TEST(DenseCellTest, EmptyHistogramGivesEmptyRegion) {
  const DensityHistogram dh = MakeHistogram({}, 100.0, 10);
  EXPECT_TRUE(DenseCellQuery(dh, 0, 0.001).IsEmpty());
}

TEST(DenseCellTest, AnswerLossScenarioFig1a) {
  // Figure 1(a): a dense square straddling four cells. Each grid cell
  // holds only one object so no cell is dense, yet the 4 objects sit in
  // one l-square => the dense-cell query loses the answer.
  const double extent = 100.0;
  const int m = 10;  // cell edge 10
  // Four objects around the corner (50,50), one per adjacent cell.
  const std::vector<Vec2> positions = {{48, 48}, {52, 48}, {48, 52},
                                       {52, 52}};
  const DensityHistogram dh = MakeHistogram(PointsAt(positions), extent, m);
  // Threshold: 4 objects per cell area (rho = 0.04).
  const Region cells = DenseCellQuery(dh, 0, 0.04);
  EXPECT_TRUE(cells.IsEmpty()) << "dense-cell method should miss the region";
  // Yet the count in the l-square (l = 10) centered at (50,50) is 4.
  const Rect square = Rect::CenteredSquare({50, 50}, 10.0);
  int count = 0;
  for (const Vec2& p : positions) count += square.ContainsLSquare(p);
  EXPECT_EQ(count, 4);
}

TEST(EdqTest, FindsDenseSquare) {
  // Cluster of 6 objects within one 2x2-cell square (l = 20).
  std::vector<Vec2> positions;
  for (int i = 0; i < 6; ++i) positions.push_back({42.0 + i, 43.0 + i * 0.5});
  const DensityHistogram dh = MakeHistogram(PointsAt(positions), 100.0, 10);
  const double rho = 6.0 / 400.0;  // exactly the cluster count / l^2
  const EdqResult result =
      EffectiveDensityQuery(dh, 0, rho, 20.0, EdqStrategy::kDensestFirst);
  ASSERT_FALSE(result.squares.empty());
  EXPECT_TRUE(result.region.Contains({45, 45}));
}

TEST(EdqTest, ReportedSquaresNeverOverlap) {
  const auto events = MakeClusteredInserts(800, 3, 100.0, 6.0, 0.2, 31);
  const DensityHistogram dh = MakeHistogram(events, 100.0, 20);
  const EdqResult result = EffectiveDensityQuery(
      dh, 0, 2.0 * 800 / (100.0 * 100.0), 15.0, EdqStrategy::kDensestFirst);
  for (size_t i = 0; i < result.squares.size(); ++i) {
    for (size_t j = i + 1; j < result.squares.size(); ++j) {
      EXPECT_FALSE(result.squares[i].IntersectsOpen(result.squares[j]))
          << i << " vs " << j;
    }
  }
}

TEST(EdqTest, SquaresHaveFixedSize) {
  const auto events = MakeClusteredInserts(500, 2, 100.0, 5.0, 0.2, 32);
  const DensityHistogram dh = MakeHistogram(events, 100.0, 20);
  const EdqResult result = EffectiveDensityQuery(
      dh, 0, 500.0 / (100 * 100), 15.0, EdqStrategy::kScanOrder);
  const double expected_edge = 15.0;  // rounds to 3 cells of edge 5
  for (const Rect& s : result.squares) {
    EXPECT_NEAR(s.Width(), expected_edge, 1e-9);
    EXPECT_NEAR(s.Height(), expected_edge, 1e-9);
  }
}

TEST(EdqTest, AmbiguityScenarioFig1b) {
  // Figure 1(b): two overlapping squares each hold the threshold count.
  // Different reporting strategies return different answers — the
  // ambiguity PDR eliminates.
  // Build: objects arranged so squares anchored at cells (2,2) and (3,3)
  // (l = 2 cells) both qualify but overlap.
  const double extent = 80.0;  // m=8 -> cell edge 10, l = 20 (2 cells)
  std::vector<Vec2> positions;
  // Shared mass in the overlap cell (3,3): 3 objects.
  positions.push_back({32, 32});
  positions.push_back({34, 34});
  positions.push_back({36, 36});
  // One object in cell (2,2) completing square A (anchor (2,2), count 4),
  // which is first in row-major scan order.
  positions.push_back({25, 25});
  // Two objects in cell (4,4) make square B (anchor (3,3)) strictly
  // denser (count 5), so densest-first prefers it over A.
  positions.push_back({45, 45});
  positions.push_back({46, 46});
  const DensityHistogram dh = MakeHistogram(PointsAt(positions), extent, 8);
  const double rho = 4.0 / 400.0;  // 4 objects per 20x20 square
  const EdqResult densest =
      EffectiveDensityQuery(dh, 0, rho, 20.0, EdqStrategy::kDensestFirst);
  const EdqResult scan =
      EffectiveDensityQuery(dh, 0, rho, 20.0, EdqStrategy::kScanOrder);
  ASSERT_FALSE(densest.squares.empty());
  ASSERT_FALSE(scan.squares.empty());
  // Multiple candidate squares existed...
  EXPECT_GT(densest.candidate_squares, 1);
  // ...and the two valid strategies disagree on the answer.
  EXPECT_GT(SymmetricDifferenceArea(densest.region, scan.region), 1.0)
      << "expected strategy-dependent (ambiguous) results";
}

TEST(EdqTest, FractionalLRoundsToWholeCells) {
  // l = 17 on a 10-mile grid rounds to 2 cells (20 miles); the count
  // threshold must use the *rounded* square's area, matching its
  // geometry.
  std::vector<Vec2> positions;
  for (int i = 0; i < 9; ++i) positions.push_back({23.0 + i * 1.5, 24.0});
  const DensityHistogram dh = MakeHistogram(PointsAt(positions), 100.0, 10);
  // 9 objects in a 20x20 block: qualifies iff rho <= 9/400.
  const EdqResult ok = EffectiveDensityQuery(dh, 0, 9.0 / 400.0, 17.0,
                                             EdqStrategy::kDensestFirst);
  ASSERT_FALSE(ok.squares.empty());
  EXPECT_NEAR(ok.squares[0].Width(), 20.0, 1e-9);
  const EdqResult too_dense = EffectiveDensityQuery(
      dh, 0, 9.5 / 400.0, 17.0, EdqStrategy::kDensestFirst);
  EXPECT_TRUE(too_dense.squares.empty());
}

TEST(EdqTest, NoSquaresWhenSparse) {
  const auto events = MakeUniformInserts(50, 100.0, 0.0, 33);
  const DensityHistogram dh = MakeHistogram(events, 100.0, 10);
  const EdqResult result = EffectiveDensityQuery(
      dh, 0, 40.0 / 400.0, 20.0, EdqStrategy::kDensestFirst);
  EXPECT_TRUE(result.squares.empty());
  EXPECT_EQ(result.candidate_squares, 0);
}

}  // namespace
}  // namespace pdr
