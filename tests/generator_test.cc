#include "pdr/mobility/generator.h"

#include <gtest/gtest.h>

#include <map>

namespace pdr {
namespace {

WorkloadConfig SmallWorkload(int objects = 500) {
  WorkloadConfig config;
  config.WithExtent(200.0);
  config.num_objects = objects;
  config.max_update_interval = 20;
  config.network.grid_nodes = 10;
  config.network.num_hotspots = 4;
  config.seed = 3;
  return config;
}

TEST(TripSimulatorTest, BootstrapInsertsEveryObjectOnce) {
  TripSimulator sim(SmallWorkload());
  const auto events = sim.Bootstrap();
  ASSERT_EQ(events.size(), 500u);
  std::map<ObjectId, int> seen;
  for (const UpdateEvent& e : events) {
    EXPECT_EQ(e.tick, 0);
    EXPECT_TRUE(e.IsInsert());
    EXPECT_EQ(e.new_state->t_ref, 0);
    ++seen[e.id];
  }
  EXPECT_EQ(seen.size(), 500u);
  for (const auto& [id, n] : seen) {
    (void)id;
    EXPECT_EQ(n, 1);
  }
}

TEST(TripSimulatorTest, StreamIsConsistent) {
  // Every modify's old_state must equal the previously reported state.
  TripSimulator sim(SmallWorkload());
  std::map<ObjectId, MotionState> current;
  for (const UpdateEvent& e : sim.Bootstrap()) current[e.id] = *e.new_state;
  for (Tick t = 1; t <= 40; ++t) {
    for (const UpdateEvent& e : sim.Advance(t)) {
      EXPECT_EQ(e.tick, t);
      ASSERT_TRUE(e.IsModify());
      ASSERT_TRUE(current.count(e.id));
      EXPECT_EQ(*e.old_state, current[e.id]);
      EXPECT_EQ(e.new_state->t_ref, t);
      current[e.id] = *e.new_state;
    }
  }
}

TEST(TripSimulatorTest, EveryObjectReportsWithinU) {
  WorkloadConfig config = SmallWorkload(300);
  config.max_update_interval = 15;
  TripSimulator sim(config);
  std::map<ObjectId, Tick> last_report;
  for (const UpdateEvent& e : sim.Bootstrap()) last_report[e.id] = 0;
  for (Tick t = 1; t <= 60; ++t) {
    for (const UpdateEvent& e : sim.Advance(t)) {
      EXPECT_LE(t - last_report[e.id], config.max_update_interval);
      last_report[e.id] = t;
    }
  }
  for (const auto& [id, t] : last_report) {
    (void)id;
    EXPECT_GE(t, 60 - config.max_update_interval);
  }
}

TEST(TripSimulatorTest, ReportedPositionsInsideDomain) {
  TripSimulator sim(SmallWorkload());
  for (const UpdateEvent& e : sim.Bootstrap()) {
    EXPECT_GE(e.new_state->pos.x, 0);
    EXPECT_LE(e.new_state->pos.x, 200);
    EXPECT_GE(e.new_state->pos.y, 0);
    EXPECT_LE(e.new_state->pos.y, 200);
  }
  for (Tick t = 1; t <= 30; ++t) {
    for (const UpdateEvent& e : sim.Advance(t)) {
      EXPECT_GE(e.new_state->pos.x, -1e-9);
      EXPECT_LE(e.new_state->pos.x, 200 + 1e-9);
      EXPECT_GE(e.new_state->pos.y, -1e-9);
      EXPECT_LE(e.new_state->pos.y, 200 + 1e-9);
    }
  }
}

TEST(TripSimulatorTest, SpeedsWithinPaperRange) {
  TripSimulator sim(SmallWorkload());
  sim.Bootstrap();
  for (Tick t = 1; t <= 20; ++t) {
    for (const UpdateEvent& e : sim.Advance(t)) {
      const double speed = e.new_state->vel.Norm();
      EXPECT_GE(speed, 25.0 / 60.0 - 1e-9);
      EXPECT_LE(speed, 100.0 / 60.0 + 1e-9);
    }
  }
}

TEST(TripSimulatorTest, SteadyUpdateLoad) {
  // At least ~1% of objects should report per tick (the paper's workload
  // property); with U=20 the floor is 5% just from forced refreshes.
  TripSimulator sim(SmallWorkload(1000));
  sim.Bootstrap();
  size_t total = 0;
  const Tick ticks = 40;
  for (Tick t = 1; t <= ticks; ++t) total += sim.Advance(t).size();
  const double per_tick = static_cast<double>(total) / ticks;
  EXPECT_GT(per_tick, 10.0);    // > 1% of 1000
  EXPECT_LT(per_tick, 1000.0);  // not everyone every tick
}

TEST(GenerateDatasetTest, ShapeAndDeterminism) {
  const Dataset a = GenerateDataset(SmallWorkload(), 25);
  ASSERT_EQ(a.ticks.size(), 26u);
  EXPECT_EQ(a.duration(), 25);
  EXPECT_EQ(a.ticks[0].size(), 500u);
  EXPECT_GT(a.TotalUpdates(), 500u);

  const Dataset b = GenerateDataset(SmallWorkload(), 25);
  ASSERT_EQ(a.TotalUpdates(), b.TotalUpdates());
  for (Tick t = 0; t <= 25; ++t) {
    ASSERT_EQ(a.ticks[t].size(), b.ticks[t].size());
    for (size_t i = 0; i < a.ticks[t].size(); ++i) {
      EXPECT_EQ(a.ticks[t][i].id, b.ticks[t][i].id);
      EXPECT_EQ(a.ticks[t][i].new_state, b.ticks[t][i].new_state);
    }
  }
}

TEST(GenerateDatasetTest, DifferentSeedsDiffer) {
  WorkloadConfig c1 = SmallWorkload();
  WorkloadConfig c2 = SmallWorkload();
  c2.seed = 999;
  const Dataset a = GenerateDataset(c1, 5);
  const Dataset b = GenerateDataset(c2, 5);
  bool any_different = false;
  for (size_t i = 0; i < a.ticks[0].size(); ++i) {
    if (!(a.ticks[0][i].new_state == b.ticks[0][i].new_state)) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(TripSimulatorTest, ChurnEmitsRealInsertsAndDeletes) {
  WorkloadConfig config = SmallWorkload(400);
  config.churn_rate = 0.02;
  TripSimulator sim(config);
  ObjectTable table;
  for (const UpdateEvent& e : sim.Bootstrap()) table.Apply(e);
  size_t deletes = 0, inserts = 0;
  for (Tick t = 1; t <= 40; ++t) {
    for (const UpdateEvent& e : sim.Advance(t)) {
      deletes += e.IsDelete();
      inserts += e.IsInsert();
      table.Apply(e);  // asserts stream consistency internally
    }
    // Churn keeps the population constant.
    EXPECT_EQ(table.size(), 400u) << "t=" << t;
  }
  EXPECT_GT(deletes, 100u);  // ~0.02 * 400 * 40 = 320 expected
  EXPECT_EQ(deletes, inserts);
}

TEST(TripSimulatorTest, ChurnedInObjectsGetFreshIds) {
  WorkloadConfig config = SmallWorkload(100);
  config.churn_rate = 0.05;
  TripSimulator sim(config);
  sim.Bootstrap();
  std::vector<ObjectId> ever_deleted;
  for (Tick t = 1; t <= 30; ++t) {
    for (const UpdateEvent& e : sim.Advance(t)) {
      if (e.IsDelete()) ever_deleted.push_back(e.id);
      if (e.IsInsert()) {
        EXPECT_GE(e.id, 100u) << "fresh objects must use new ids";
        // A dead id never comes back.
        for (ObjectId dead : ever_deleted) EXPECT_NE(e.id, dead);
      }
    }
  }
  EXPECT_FALSE(ever_deleted.empty());
}

TEST(TripSimulatorTest, ZeroChurnMatchesLegacyBehavior) {
  // churn_rate = 0 produces a pure modify stream after bootstrap.
  WorkloadConfig config = SmallWorkload(200);
  config.churn_rate = 0.0;
  TripSimulator sim(config);
  sim.Bootstrap();
  for (Tick t = 1; t <= 20; ++t) {
    for (const UpdateEvent& e : sim.Advance(t)) {
      EXPECT_TRUE(e.IsModify());
    }
  }
}

TEST(MakeClusteredInsertsTest, BasicShape) {
  const auto events = MakeClusteredInserts(400, 3, 100.0, 2.0, 0.1, 7);
  ASSERT_EQ(events.size(), 400u);
  for (const UpdateEvent& e : events) {
    EXPECT_TRUE(e.IsInsert());
    EXPECT_EQ(e.new_state->vel, Vec2(0, 0));
    EXPECT_GE(e.new_state->pos.x, 0);
    EXPECT_LE(e.new_state->pos.x, 100);
  }
}

TEST(MakeClusteredInsertsTest, ClustersAreDenserThanBackground) {
  const auto events = MakeClusteredInserts(2000, 2, 100.0, 1.5, 0.05, 8);
  // Count points in a fine grid; the max cell should hold far more than
  // the uniform expectation.
  Grid grid(100.0, 20);
  std::vector<int> counts(grid.cell_count(), 0);
  for (const UpdateEvent& e : events) ++counts[grid.CellOf(e.new_state->pos)];
  const int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(max_count, 2000 / 400 * 20);  // >20x uniform density
}

TEST(MakeUniformInsertsTest, BoundsAndVelocities) {
  const auto events = MakeUniformInserts(300, 50.0, 2.0, 9);
  ASSERT_EQ(events.size(), 300u);
  for (const UpdateEvent& e : events) {
    EXPECT_GE(e.new_state->pos.x, 0);
    EXPECT_LT(e.new_state->pos.x, 50);
    EXPECT_LE(std::abs(e.new_state->vel.x), 2.0);
    EXPECT_LE(std::abs(e.new_state->vel.y), 2.0);
  }
}

}  // namespace
}  // namespace pdr
