#include "pdr/core/monitor.h"

#include <gtest/gtest.h>

#include "pdr/core/oracle.h"
#include "pdr/mobility/generator.h"

namespace pdr {
namespace {

constexpr double kExtent = 200.0;

FrEngine MakeEngine() {
  return FrEngine({.extent = kExtent, .histogram_side = 20, .horizon = 30,
                   .buffer_pages = 64, .io_ms = 10.0});
}

// A convoy of objects crossing the domain creates a moving dense region.
std::vector<UpdateEvent> Convoy(int n, Vec2 start, Vec2 vel) {
  std::vector<UpdateEvent> events;
  Rng rng(71);
  for (ObjectId id = 0; id < static_cast<ObjectId>(n); ++id) {
    const Vec2 p{start.x + rng.Uniform(-3, 3), start.y + rng.Uniform(-3, 3)};
    events.push_back({0, id, std::nullopt, MotionState{p, vel, 0}});
  }
  return events;
}

TEST(PdrMonitorTest, FirstTickReportsEverythingAsAppeared) {
  FrEngine fr = MakeEngine();
  for (const UpdateEvent& e : Convoy(20, {50, 100}, {0, 0})) fr.Apply(e);
  PdrMonitor monitor(&fr, {.rho = 15.0 / 100.0, .l = 10.0, .lookahead = 0});
  const auto delta = monitor.OnTick(0);
  EXPECT_EQ(delta.now, 0);
  EXPECT_EQ(delta.q_t, 0);
  EXPECT_FALSE(delta.current.IsEmpty());
  EXPECT_NEAR(delta.appeared.Area(), delta.current.Area(), 1e-9);
  EXPECT_TRUE(delta.vanished.IsEmpty());
  EXPECT_TRUE(delta.Changed());
}

TEST(PdrMonitorTest, StationaryWorkloadProducesNoDeltas) {
  FrEngine fr = MakeEngine();
  for (const UpdateEvent& e : Convoy(20, {50, 100}, {0, 0})) fr.Apply(e);
  PdrMonitor monitor(&fr, {.rho = 15.0 / 100.0, .l = 10.0, .lookahead = 0});
  (void)monitor.OnTick(0);
  for (Tick now = 1; now <= 5; ++now) {
    fr.AdvanceTo(now);
    const auto delta = monitor.OnTick(now);
    EXPECT_FALSE(delta.Changed()) << "now=" << now;
    EXPECT_TRUE(delta.appeared.IsEmpty());
    EXPECT_TRUE(delta.vanished.IsEmpty());
  }
}

TEST(PdrMonitorTest, MovingConvoyAppearsAheadVanishesBehind) {
  FrEngine fr = MakeEngine();
  for (const UpdateEvent& e : Convoy(20, {30, 100}, {4, 0})) fr.Apply(e);
  PdrMonitor monitor(&fr, {.rho = 15.0 / 100.0, .l = 10.0, .lookahead = 0});
  auto first = monitor.OnTick(0);
  ASSERT_FALSE(first.current.IsEmpty());
  for (Tick now = 2; now <= 10; now += 2) {
    fr.AdvanceTo(now);
    const auto delta = monitor.OnTick(now);
    EXPECT_TRUE(delta.Changed()) << "now=" << now;
    // The region moves right: appeared lies to the right of vanished.
    ASSERT_FALSE(delta.appeared.IsEmpty());
    ASSERT_FALSE(delta.vanished.IsEmpty());
    EXPECT_GT(delta.appeared.BoundingBox().x_hi,
              delta.vanished.BoundingBox().x_hi);
    // Deltas are consistent with the full answers:
    // current = (previous \ vanished) + appeared.
    EXPECT_NEAR(delta.current.Area(),
                first.current.Area() - delta.vanished.Area() +
                    delta.appeared.Area(),
                1e-6);
    first = delta;
  }
}

TEST(PdrMonitorTest, LookaheadShiftsQueryTime) {
  FrEngine fr = MakeEngine();
  for (const UpdateEvent& e : Convoy(20, {30, 100}, {4, 0})) fr.Apply(e);
  PdrMonitor monitor(&fr, {.rho = 15.0 / 100.0, .l = 10.0, .lookahead = 10});
  const auto delta = monitor.OnTick(0);
  EXPECT_EQ(delta.q_t, 10);
  // At t=10 the convoy center is near x = 70.
  EXPECT_TRUE(delta.current.Contains({70, 100}));
  EXPECT_FALSE(delta.current.Contains({30, 100}));
}

TEST(PdrMonitorTest, DeltasMatchIndependentQueries) {
  // On a realistic stream, appeared/vanished must equal the set
  // differences of the standalone snapshot answers.
  WorkloadConfig config;
  config.WithExtent(kExtent);
  config.num_objects = 900;
  config.max_update_interval = 10;
  config.network.grid_nodes = 8;
  config.seed = 72;
  TripSimulator sim(config);
  FrEngine fr = MakeEngine();
  Oracle oracle(kExtent);
  const double rho = 4.0 * 900 / (kExtent * kExtent);
  PdrMonitor monitor(&fr, {.rho = rho, .l = 20.0, .lookahead = 5});

  for (const UpdateEvent& e : sim.Bootstrap()) {
    fr.Apply(e);
    oracle.Apply(e);
  }
  Region prev_truth;
  bool has_prev = false;
  for (Tick now = 0; now <= 12; now += 3) {
    if (now > 0) {
      for (Tick t = std::max<Tick>(1, now - 2); t <= now; ++t) {
        fr.AdvanceTo(t);
        for (const UpdateEvent& e : sim.Advance(t)) {
          fr.Apply(e);
          oracle.Apply(e);
        }
      }
    }
    const auto delta = monitor.OnTick(now);
    const Region truth = oracle.DenseRegions(now + 5, rho, 20.0);
    EXPECT_NEAR(SymmetricDifferenceArea(delta.current, truth), 0.0, 1e-6);
    if (has_prev) {
      EXPECT_NEAR(delta.appeared.Area(), DifferenceArea(truth, prev_truth),
                  1e-6);
      EXPECT_NEAR(delta.vanished.Area(), DifferenceArea(prev_truth, truth),
                  1e-6);
    }
    prev_truth = truth;
    has_prev = true;
  }
}

TEST(PdrMonitorTest, ResetReportsFullAnswerAgain) {
  FrEngine fr = MakeEngine();
  for (const UpdateEvent& e : Convoy(20, {50, 100}, {0, 0})) fr.Apply(e);
  PdrMonitor monitor(&fr, {.rho = 15.0 / 100.0, .l = 10.0, .lookahead = 0});
  (void)monitor.OnTick(0);
  monitor.Reset();
  const auto delta = monitor.OnTick(0);
  EXPECT_NEAR(delta.appeared.Area(), delta.current.Area(), 1e-9);
  EXPECT_TRUE(delta.vanished.IsEmpty());
}

TEST(PdrMonitorTest, CheckpointHookEveryTickFiresOnEveryEvaluatedTick) {
  FrEngine fr = MakeEngine();
  for (const UpdateEvent& e : Convoy(20, {50, 100}, {0, 0})) fr.Apply(e);
  PdrMonitor monitor(&fr, {.rho = 15.0 / 100.0, .l = 10.0, .lookahead = 0});
  int fired = 0;
  monitor.SetCheckpointHook([&] { ++fired; }, /*every_ticks=*/1);
  for (Tick now = 0; now <= 4; ++now) {
    fr.AdvanceTo(now);
    (void)monitor.OnTick(now);
    EXPECT_EQ(fired, static_cast<int>(now) + 1) << "now=" << now;
  }
}

TEST(PdrMonitorTest, ShedTickSkipsCheckpointHookAndCadence) {
  FrEngine fr = MakeEngine();
  for (const UpdateEvent& e : Convoy(20, {50, 100}, {0, 0})) fr.Apply(e);
  PdrMonitor monitor(&fr, {.rho = 15.0 / 100.0, .l = 10.0, .lookahead = 0});
  AdmissionController ac({.max_inflight = 1});
  monitor.SetAdmissionController(&ac);
  int fired = 0;
  monitor.SetCheckpointHook([&] { ++fired; }, /*every_ticks=*/2);

  (void)monitor.OnTick(0);  // cadence 1/2, no fire yet
  EXPECT_EQ(fired, 0);

  // Saturate admission: the shed tick must neither run the hook nor
  // advance the cadence counter (the standing state did not change).
  auto held = ac.TryAdmit();
  ASSERT_TRUE(held.ok());
  fr.AdvanceTo(1);
  const auto shed = monitor.OnTick(1);
  EXPECT_TRUE(shed.shed);
  EXPECT_EQ(shed.tier, AnswerTier::kShed);
  EXPECT_EQ(fired, 0);

  // The next evaluated tick is the cadence's 2nd: exactly one fire.
  held.Release();
  fr.AdvanceTo(2);
  const auto resumed = monitor.OnTick(2);
  EXPECT_FALSE(resumed.shed);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace pdr
