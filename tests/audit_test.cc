// Shadow auditor / cost calibrator / drift detector tests.
//
// The workload is a synthetic uniform grid of stationary objects filling a
// central block of the domain: the exact dense region is a predictable
// square, the PA density field is a plateau with l-wide ramps at the block
// edges (easy for a high-degree Chebyshev model, hard for a truncated
// one), and every engine sees the identical update stream.

#include "pdr/obs/audit.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "pdr/core/fr_engine.h"
#include "pdr/core/monitor.h"
#include "pdr/core/oracle.h"
#include "pdr/core/pa_engine.h"
#include "pdr/obs/export.h"
#include "pdr/obs/report.h"

namespace pdr {
namespace {

constexpr double kExtent = 200.0;
constexpr double kL = 20.0;
constexpr double kRho = 0.1;  // in-block density is 0.25

// Stationary objects every `spacing` units over [lo, hi) x [lo, hi).
std::vector<UpdateEvent> BlockGrid(double lo, double hi, double spacing) {
  std::vector<UpdateEvent> events;
  ObjectId id = 0;
  for (double x = lo; x < hi; x += spacing) {
    for (double y = lo; y < hi; y += spacing) {
      events.push_back(
          {0, id++, std::nullopt, MotionState{{x, y}, {0, 0}, 0}});
    }
  }
  return events;
}

// FR + PA + oracle fed the same block-grid snapshot at tick 0.
struct AuditRig {
  FrEngine fr;
  PaEngine pa;
  Oracle oracle;

  explicit AuditRig(int degree)
      : fr({.extent = kExtent,
            .histogram_side = 20,
            .horizon = 30,
            .buffer_pages = 64,
            .io_ms = 10.0}),
        pa({.extent = kExtent,
            .poly_side = 4,
            .degree = degree,
            .horizon = 30,
            .l = kL,
            .eval_grid = 200}),
        oracle(kExtent) {
    for (const UpdateEvent& e : BlockGrid(60, 140, 2)) {
      fr.Apply(e);
      pa.Apply(e);
      oracle.Apply(e);
    }
  }

  ShadowAuditor MakeAuditor(double rate = 1.0) {
    ShadowAuditor::Options options;
    options.sample_rate = rate;
    options.l = kL;
    ShadowAuditor auditor(&fr, &oracle, options);
    auditor.SetApproxDensityProbe(
        [this](Tick t, Vec2 p) { return pa.Density(t, p); });
    return auditor;
  }
};

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PdrObs::SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
  }
};

// Verdict math works even with observability compiled out; tests that
// read the registry back (or rely on runtime sampling) skip under
// -DPDR_OBS=OFF, matching obs_test.
#define REQUIRE_OBS_COMPILED_IN()                                  \
  if (!PdrObs::CompiledIn())                                       \
  GTEST_SKIP() << "observability compiled out (PDR_OBS=OFF)"

TEST_F(AuditTest, HighDegreePaScoresNearPerfect) {
  AuditRig rig(/*degree=*/12);
  ShadowAuditor auditor = rig.MakeAuditor();
  const Region pa_region = rig.pa.Query(0, kRho).region;
  const AuditVerdict verdict = auditor.Audit(0, kRho, pa_region);

  EXPECT_GT(verdict.fr_area, 0.0);
  EXPECT_GE(verdict.precision, 0.95);
  EXPECT_GE(verdict.recall, 0.95);
  EXPECT_LE(verdict.false_accept_frac, 0.05);
  EXPECT_LE(verdict.false_reject_frac, 0.05);
  EXPECT_EQ(auditor.audited(), 1);
}

TEST_F(AuditTest, CoefficientTruncationLosesRecall) {
  AuditRig sharp(/*degree=*/12);
  AuditRig truncated(/*degree=*/1);
  ShadowAuditor sharp_auditor = sharp.MakeAuditor();
  ShadowAuditor trunc_auditor = truncated.MakeAuditor();

  const AuditVerdict good =
      sharp_auditor.Audit(0, kRho, sharp.pa.Query(0, kRho).region);
  const AuditVerdict bad =
      trunc_auditor.Audit(0, kRho, truncated.pa.Query(0, kRho).region);

  // A degree-1 model cannot hold the plateau and the ramps at once, so
  // part of the truly dense block is lost.
  EXPECT_LT(bad.recall, 0.95);
  EXPECT_LT(bad.recall, good.recall);
  EXPECT_FALSE(bad.Agrees());
  // The disagreement region is probed against the oracle.
  EXPECT_GT(bad.density_probes, 0);
  EXPECT_GT(bad.max_density_err, 0.0);
}

TEST_F(AuditTest, VerdictsPublishRegistryMetrics) {
  REQUIRE_OBS_COMPILED_IN();
  AuditRig rig(/*degree=*/12);
  ShadowAuditor auditor = rig.MakeAuditor();
  (void)auditor.Audit(0, kRho, rig.pa.Query(0, kRho).region);

  const auto snap = MetricsRegistry::Global().TakeSnapshot();
  bool saw_precision = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "pdr.audit.precision") {
      saw_precision = true;
      EXPECT_EQ(h.stat.count(), 1);
    }
  }
  EXPECT_TRUE(saw_precision);
  int64_t sampled = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "pdr.audit.sampled") sampled = c.value;
  }
  EXPECT_EQ(sampled, 1);
}

TEST_F(AuditTest, SampleRateZeroNeverAudits) {
  AuditRig rig(/*degree=*/4);
  ShadowAuditor auditor = rig.MakeAuditor(/*rate=*/0.0);
  const Region pa_region = rig.pa.Query(0, kRho).region;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(auditor.MaybeAudit(0, kRho, pa_region).has_value());
  }
  EXPECT_EQ(auditor.audited(), 0);
}

TEST_F(AuditTest, RuntimeDisabledSkipsSampling) {
  REQUIRE_OBS_COMPILED_IN();
  AuditRig rig(/*degree=*/4);
  ShadowAuditor auditor = rig.MakeAuditor(/*rate=*/1.0);
  const Region pa_region = rig.pa.Query(0, kRho).region;
  PdrObs::SetEnabled(false);
  EXPECT_FALSE(auditor.MaybeAudit(0, kRho, pa_region).has_value());
  PdrObs::SetEnabled(true);
  EXPECT_TRUE(auditor.MaybeAudit(0, kRho, pa_region).has_value());
}

TEST_F(AuditTest, MonitorCarriesVerdictOnDelta) {
  REQUIRE_OBS_COMPILED_IN();
  AuditRig rig(/*degree=*/12);
  ShadowAuditor auditor = rig.MakeAuditor();
  PdrMonitor monitor(&rig.pa, {.rho = kRho, .l = kL, .lookahead = 0});
  monitor.SetAuditor(&auditor);
  const auto delta = monitor.OnTick(0);
  ASSERT_TRUE(delta.audit.has_value());
  EXPECT_GE(delta.audit->recall, 0.9);
  EXPECT_FALSE(delta.current.IsEmpty());
}

// --- CostCalibrator ---------------------------------------------------------

TEST_F(AuditTest, ZeroSlackPredictionMatchesFilterExactly) {
  AuditRig rig(/*degree=*/4);
  CostCalibrator calibrator(&rig.fr, {.z = 0.0});
  const CostPrediction pred = calibrator.Predict(0, kRho, kL);
  const auto actual = rig.fr.Query(0, kRho, kL);
  // With no slack the model runs the filter's own block sums, so the
  // classification is reproduced exactly.
  EXPECT_DOUBLE_EQ(pred.accepted_cells,
                   static_cast<double>(actual.accepted_cells));
  EXPECT_DOUBLE_EQ(pred.rejected_cells,
                   static_cast<double>(actual.rejected_cells));
  EXPECT_DOUBLE_EQ(pred.candidate_cells,
                   static_cast<double>(actual.candidate_cells));
}

TEST_F(AuditTest, SlackWidensCandidateBandAndStaysCalibrated) {
  REQUIRE_OBS_COMPILED_IN();
  AuditRig rig(/*degree=*/4);
  CostCalibrator tight(&rig.fr, {.z = 0.0});
  CostCalibrator calibrator(&rig.fr);  // default z = 2
  const CostPrediction pred = calibrator.Predict(0, kRho, kL);
  EXPECT_GE(pred.candidate_cells,
            tight.Predict(0, kRho, kL).candidate_cells);

  const auto actual = rig.fr.Query(0, kRho, kL);
  calibrator.Observe(pred, actual);
  EXPECT_EQ(calibrator.observations(), 1);
  // The model should land within the drift band on a benign workload.
  EXPECT_GT(calibrator.io_ratio_ewma(), 0.05);
  EXPECT_LT(calibrator.io_ratio_ewma(), 20.0);
  EXPECT_GT(calibrator.candidate_ratio_ewma(), 0.05);
  EXPECT_LE(calibrator.candidate_ratio_ewma(), 20.0);

  const auto snap = MetricsRegistry::Global().TakeSnapshot();
  bool saw_ratio = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "pdr.calib.io_ratio" && h.stat.count() == 1) {
      saw_ratio = true;
    }
  }
  EXPECT_TRUE(saw_ratio);
}

// --- EwmaDriftDetector ------------------------------------------------------

TEST_F(AuditTest, DriftDetectorRespectsWarmup) {
  EwmaDriftDetector detector({.alpha = 1.0, .min_recall = 0.9, .warmup = 3});
  // Bad from the start, but the flag may not raise before warmup.
  EXPECT_FALSE(detector.ObserveQuality(1, 1.0, 0.5));
  EXPECT_FALSE(detector.ObserveQuality(2, 1.0, 0.5));
  EXPECT_FALSE(detector.drifted());
  EXPECT_TRUE(detector.ObserveQuality(3, 1.0, 0.5));
  EXPECT_TRUE(detector.recall_drifted());
}

TEST_F(AuditTest, DriftDetectorFiresOnInjectedRecallRamp) {
  EwmaDriftDetector detector;  // defaults: alpha 0.3, min_recall 0.9
  Tick tick = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(detector.ObserveQuality(++tick, 1.0, 0.99));
  }
  EXPECT_FALSE(detector.drifted());
  // Ramp the recall error up; the EWMA must cross the floor and latch.
  bool fired = false;
  for (double recall = 0.95; recall > 0.4; recall -= 0.05) {
    fired = detector.ObserveQuality(++tick, 1.0, recall) || fired;
  }
  EXPECT_TRUE(fired);
  EXPECT_TRUE(detector.drifted());
  EXPECT_TRUE(detector.recall_drifted());
  ASSERT_EQ(detector.events().size(), 1u);
  EXPECT_STREQ(detector.events()[0].signal, "recall");
  EXPECT_LT(detector.events()[0].value, 0.9);

  // Sticky: recovering does not clear the flag, Reset() does.
  for (int i = 0; i < 20; ++i) {
    (void)detector.ObserveQuality(++tick, 1.0, 1.0);
  }
  EXPECT_TRUE(detector.drifted());
  detector.Reset();
  EXPECT_FALSE(detector.drifted());
  EXPECT_TRUE(detector.events().empty());
}

TEST_F(AuditTest, DriftDetectorFlagsIoRatioBand) {
  EwmaDriftDetector detector(
      {.alpha = 1.0, .io_ratio_lo = 0.05, .io_ratio_hi = 20.0, .warmup = 1});
  EXPECT_FALSE(detector.ObserveIoRatio(1, 1.0));
  EXPECT_TRUE(detector.ObserveIoRatio(2, 50.0));
  EXPECT_TRUE(detector.io_drifted());
  ASSERT_FALSE(detector.events().empty());
  EXPECT_STREQ(detector.events().back().signal, "io_ratio");
}

// --- MonitorReporter --------------------------------------------------------

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST_F(AuditTest, ReporterEmitsAuditWindowJsonl) {
  REQUIRE_OBS_COMPILED_IN();
  AuditRig rig(/*degree=*/12);
  ShadowAuditor auditor = rig.MakeAuditor();
  CostCalibrator calibrator(&rig.fr);
  auditor.SetCalibrator(&calibrator);

  const std::string path =
      ::testing::TempDir() + "/pdr_audit_report_test.jsonl";
  std::remove(path.c_str());
  {
    JsonlWriter writer(path);
    ASSERT_TRUE(writer.ok());
    MonitorReporter::Options options;
    options.interval = 5;
    MonitorReporter reporter(&writer, options);
    (void)auditor.Audit(0, kRho, rig.pa.Query(0, kRho).region);
    (void)auditor.Audit(0, kRho, rig.pa.Query(0, kRho).region);
    reporter.EmitWindow(5);
    EXPECT_EQ(reporter.windows(), 1);
    EXPECT_FALSE(reporter.drift_seen());
  }
  const std::string text = ReadWholeFile(path);
  EXPECT_NE(text.find("\"type\":\"audit_window\""), std::string::npos);
  EXPECT_NE(text.find("\"sampled\":2"), std::string::npos);
  EXPECT_NE(text.find("\"precision_mean\":"), std::string::npos);
  EXPECT_NE(text.find("\"recall_mean\":"), std::string::npos);
  EXPECT_NE(text.find("\"io_ratio_mean\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(AuditTest, ReporterWindowDiffIsolatesNewObservations) {
  REQUIRE_OBS_COMPILED_IN();
  Histogram& h = MetricsRegistry::Global().GetHistogram("pdr.test.window");
  h.Observe(10.0);
  const auto before = MetricsRegistry::Global().TakeSnapshot();
  h.Observe(20.0);
  h.Observe(30.0);
  const auto after = MetricsRegistry::Global().TakeSnapshot();

  const auto window =
      MonitorReporter::DiffHistogram(after, before, "pdr.test.window");
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->count, 2);
  EXPECT_DOUBLE_EQ(window->mean, 25.0);  // the first 10.0 is excluded
  EXPECT_GT(window->p50, 10.0);

  // No activity between snapshots -> no window entry.
  EXPECT_FALSE(
      MonitorReporter::DiffHistogram(after, after, "pdr.test.window")
          .has_value());
}

TEST_F(AuditTest, ReporterFinalReportListsPercentiles) {
  REQUIRE_OBS_COMPILED_IN();
  AuditRig rig(/*degree=*/12);
  ShadowAuditor auditor = rig.MakeAuditor();
  (void)auditor.Audit(0, kRho, rig.pa.Query(0, kRho).region);

  MonitorReporter reporter(nullptr, MonitorReporter::Options{});
  const std::string path = ::testing::TempDir() + "/pdr_audit_final_test.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  reporter.WriteFinalReport(f);
  std::fclose(f);
  const std::string text = ReadWholeFile(path);
  EXPECT_NE(text.find("PDR monitoring report"), std::string::npos);
  EXPECT_NE(text.find("pdr.audit.precision"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pdr
