// MVCC soak: a seeded multi-reader storm against a free-running writer,
// built to run under ThreadSanitizer (scripts/check.sh TSan lane runs
// this suite). Where mvcc_interleave_test pins every epoch from the
// writer thread and hands snapshots over deterministically, here the
// readers race Pin() themselves against in-flight commits — the
// scheduling is genuinely nondeterministic, which is exactly what TSan
// needs to see. Correctness is still checked: the writer records the
// serialized answer digest for every epoch before committing the next
// batch, and whatever epoch a reader happens to pin, its snapshot answer
// must hash to that epoch's recorded digest.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pdr/common/random.h"
#include "pdr/core/fr_engine.h"
#include "pdr/mobility/generator.h"
#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/mvcc/snapshot_query.h"
#include "transcript_util.h"

namespace pdr {
namespace {

constexpr double kExtent = 200.0;

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t ResultDigest(const FrEngine::QueryResult& r) {
  std::ostringstream os;
  os << r.accepted_cells << '/' << r.candidate_cells << '/'
     << r.rejected_cells << '/' << r.objects_fetched << '/'
     << r.sweep.dense_rects << ' ';
  test_util::AppendRegion(r.region, &os);
  return Fnv1a(os.str());
}

struct SoakOutcome {
  int64_t queries = 0;
  int64_t epochs_seen = 0;
  int64_t divergent = 0;
};

// `readers` threads pin-and-query at full speed while the main thread
// drives `duration` commits. The query (q_t offset, rho, l) is fixed for
// the whole storm so each epoch has exactly one reference digest.
SoakOutcome RunSoak(uint64_t seed, int readers, Tick duration) {
  mvcc::SnapshotManager snapshots;
  FrEngine fr(FrEngine::Options{.extent = kExtent,
                                .histogram_side = 16,
                                .horizon = 24,
                                .buffer_pages = 64,
                                .max_update_interval = 8,
                                .snapshots = &snapshots});
  WorkloadConfig config;
  config.WithExtent(kExtent);
  config.num_objects = 140;
  config.max_update_interval = 8;
  config.seed = seed;
  const Dataset ds = GenerateDataset(config, duration);
  const double rho = 4.0 * config.num_objects / (kExtent * kExtent);
  const double l = 25.0;
  const Tick lookahead = 3;

  // Epoch -> serialized reference digest. Written by the writer before
  // the epoch becomes pinnable, read by racing readers afterwards: the
  // commit's release/acquire ordering makes the entry visible before
  // Pin() can return the epoch, but the map needs its own lock because
  // the writer keeps inserting while readers look up.
  std::mutex ref_mu;
  std::map<mvcc::Epoch, uint64_t> reference;

  std::atomic<bool> done{false};
  std::atomic<int64_t> queries{0};
  std::atomic<int64_t> divergent{0};
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> seen_mask;
  seen_mask.reserve(static_cast<size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    seen_mask.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }

  auto reader_loop = [&](int id) {
    while (!done.load(std::memory_order_acquire)) {
      mvcc::Snapshot snap;
      try {
        snap = snapshots.Pin();
      } catch (const std::logic_error&) {
        continue;  // racing the very first commit
      }
      const mvcc::Epoch epoch = snap.epoch();
      const Tick q_t = mvcc::SnapshotFrNow(snap) + lookahead;
      const uint64_t got =
          ResultDigest(mvcc::SnapshotFrQuery(fr, snap, q_t, rho, l));
      snap.Release();
      uint64_t want = 0;
      {
        std::lock_guard<std::mutex> lock(ref_mu);
        want = reference.at(epoch);
      }
      if (got != want) divergent.fetch_add(1, std::memory_order_relaxed);
      queries.fetch_add(1, std::memory_order_relaxed);
      if (epoch < 64) {
        seen_mask[static_cast<size_t>(id)]->fetch_or(
            1ULL << epoch, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(readers));

  for (Tick now = 0; now <= ds.duration(); ++now) {
    fr.AdvanceTo(now);
    for (const UpdateEvent& e : ds.ticks[now]) fr.Apply(e);
    fr.PrepareCommit();
    const uint64_t digest =
        ResultDigest(fr.Query(now + lookahead, rho, l));
    {
      std::lock_guard<std::mutex> lock(ref_mu);
      reference[snapshots.open_epoch()] = digest;
    }
    snapshots.Commit({fr.CaptureState(), nullptr});
    if (now == 0) {
      for (int r = 0; r < readers; ++r) pool.emplace_back(reader_loop, r);
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();

  uint64_t epochs = 0;
  for (const auto& m : seen_mask) epochs |= m->load();
  SoakOutcome out;
  out.queries = queries.load();
  out.divergent = divergent.load();
  while (epochs != 0) {
    out.epochs_seen += static_cast<int64_t>(epochs & 1);
    epochs >>= 1;
  }
  return out;
}

TEST(MvccSoakTest, RacingReadersMatchSerializedDigests) {
  const SoakOutcome out = RunSoak(/*seed=*/77, /*readers=*/4,
                                  /*duration=*/40);
  EXPECT_EQ(out.divergent, 0)
      << out.divergent << " of " << out.queries
      << " racing snapshot queries diverged from the serialized digest";
  EXPECT_GT(out.queries, 0);
}

TEST(MvccSoakTest, TwoReaderStormSecondSeed) {
  const SoakOutcome out = RunSoak(/*seed=*/123, /*readers=*/2,
                                  /*duration=*/30);
  EXPECT_EQ(out.divergent, 0);
  EXPECT_GT(out.queries, 0);
}

TEST(MvccSoakTest, WriterNeverBlocksOnPinnedReader) {
  // A reader holds one pin for the whole run; the writer must still
  // commit every epoch (no back-pressure path exists to block it).
  mvcc::SnapshotManager snapshots;
  FrEngine fr(FrEngine::Options{.extent = kExtent,
                                .histogram_side = 16,
                                .horizon = 24,
                                .buffer_pages = 64,
                                .max_update_interval = 8,
                                .snapshots = &snapshots});
  for (const UpdateEvent& e : MakeUniformInserts(100, kExtent, 1.5, 5)) {
    fr.Apply(e);
  }
  fr.PrepareCommit();
  snapshots.Commit({fr.CaptureState(), nullptr});
  mvcc::Snapshot pin = snapshots.Pin();

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    const double rho = 1.0 * 100 / (kExtent * kExtent);
    while (!stop.load(std::memory_order_acquire)) {
      mvcc::SnapshotFrQuery(fr, pin, mvcc::SnapshotFrNow(pin) + 2, rho,
                            20.0);
    }
  });
  for (Tick now = 1; now <= 25; ++now) {
    fr.AdvanceTo(now);
    fr.PrepareCommit();
    snapshots.Commit({fr.CaptureState(), nullptr});
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(snapshots.committed_epoch(), 26u);
  EXPECT_EQ(snapshots.reclaim_floor(), 1u);
  pin.Release();
}

}  // namespace
}  // namespace pdr
