#include "pdr/sweep/plane_sweep.h"

#include <gtest/gtest.h>

#include "pdr/common/random.h"
#include "pdr/common/region.h"
#include "pdr/histogram/filter.h"

namespace pdr {
namespace {

int64_t BruteCount(const std::vector<Vec2>& positions, Vec2 center,
                   double l) {
  const Rect square = Rect::CenteredSquare(center, l);
  int64_t count = 0;
  for (const Vec2& p : positions) count += square.ContainsLSquare(p);
  return count;
}

TEST(SweepYTest, SingleObjectSegment) {
  // One object at y=5; l=2: centers with 4 < y <= ... in-band iff
  // y-1 < 5 <= y+1 iff 4 <= y < 6.
  const auto segments = SweepY({5.0}, 0.0, 10.0, 2.0, 1);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].first, 4.0);
  EXPECT_DOUBLE_EQ(segments[0].second, 6.0);
}

TEST(SweepYTest, ThresholdTwoNeedsOverlap) {
  // Objects at y=5 and y=6.5 with l=2: both cover iff y in [5.5, 6).
  const auto segments = SweepY({5.0, 6.5}, 0.0, 10.0, 2.0, 2);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].first, 5.5);
  EXPECT_DOUBLE_EQ(segments[0].second, 6.0);
}

TEST(SweepYTest, AdjacentSegmentsMerge) {
  // Two objects close enough that their dense windows touch: one segment.
  const auto segments = SweepY({5.0, 5.5}, 0.0, 10.0, 2.0, 1);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].first, 4.0);
  EXPECT_DOUBLE_EQ(segments[0].second, 6.5);
}

TEST(SweepYTest, DisjointSegments) {
  const auto segments = SweepY({2.0, 8.0}, 0.0, 10.0, 2.0, 1);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_DOUBLE_EQ(segments[0].first, 1.0);
  EXPECT_DOUBLE_EQ(segments[0].second, 3.0);
  EXPECT_DOUBLE_EQ(segments[1].first, 7.0);
  EXPECT_DOUBLE_EQ(segments[1].second, 9.0);
}

TEST(SweepYTest, ClipsToBand) {
  const auto segments = SweepY({0.5}, 0.0, 10.0, 2.0, 1);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].first, 0.0);  // clipped at y_b
  EXPECT_DOUBLE_EQ(segments[0].second, 1.5);
}

TEST(SweepYTest, EmptyWhenBelowThreshold) {
  EXPECT_TRUE(SweepY({5.0}, 0.0, 10.0, 2.0, 2).empty());
  EXPECT_TRUE(SweepY({}, 0.0, 10.0, 2.0, 1).empty());
}

TEST(SweepCellTest, PaperExampleSingleSquare) {
  // Four objects at the corners of a unit square; l=1, threshold 4:
  // only the center of that square sees all four... with the half-open
  // semantics the dense point set is {(x,y): x in [x_max-0.5... } — check
  // via membership against brute force below; here check non-emptiness
  // and exact count at the centroid.
  const std::vector<Vec2> objs = {{4.6, 4.6}, {5.4, 4.6}, {4.6, 5.4},
                                  {5.4, 5.4}};
  const Rect cell(0, 0, 10, 10);
  const auto rects = SweepCell(cell, objs, 1.0, 4);
  ASSERT_FALSE(rects.empty());
  const Region region{rects};
  EXPECT_TRUE(region.Contains({5.0, 5.0}));
  EXPECT_EQ(BruteCount(objs, {5.0, 5.0}, 1.0), 4);
}

TEST(SweepCellTest, ZeroThresholdReturnsWholeCell) {
  const Rect cell(2, 3, 7, 9);
  const auto rects = SweepCell(cell, {}, 1.0, 0);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], cell);
}

TEST(SweepCellTest, EmptyWhenNotEnoughObjects) {
  const Rect cell(0, 0, 10, 10);
  EXPECT_TRUE(SweepCell(cell, {{5, 5}}, 2.0, 2).empty());
  EXPECT_TRUE(SweepCell(cell, {}, 2.0, 1).empty());
}

TEST(SweepCellTest, OutputClippedToCell) {
  const Rect cell(0, 0, 4, 4);
  // Dense cluster just outside the right edge whose squares reach inside.
  const std::vector<Vec2> objs = {{4.2, 2.0}, {4.3, 2.1}, {4.4, 1.9}};
  const auto rects = SweepCell(cell, objs, 2.0, 2);
  for (const Rect& r : rects) {
    EXPECT_TRUE(cell.Contains(r)) << r;
  }
}

TEST(SweepCellTest, EdgeSemanticsHalfOpen) {
  // Object exactly at distance l/2 left of center: center's square
  // excludes its left edge, so the object at x = c - l/2 is OUT; the
  // object at x = c + l/2 (right edge) is IN.
  const Rect cell(0, 0, 10, 10);
  const double l = 2.0;
  {
    // Single object at (5,5). Center x = 4 puts the object on the right
    // edge of the square (included); x = 6 puts it on the left (excluded).
    const auto rects = SweepCell(cell, {{5, 5}}, l, 1);
    const Region region{rects};
    EXPECT_TRUE(region.Contains({4.0, 5.0}));    // obj on right/top edge: in
    EXPECT_FALSE(region.Contains({6.0, 5.0}));   // obj on left edge: out
    EXPECT_TRUE(region.Contains({5.999, 5.0}));  // just inside
  }
}

TEST(SweepCellTest, DuplicatePositionsCount) {
  const Rect cell(0, 0, 10, 10);
  const std::vector<Vec2> objs = {{5, 5}, {5, 5}, {5, 5}};
  const Region region{SweepCell(cell, objs, 2.0, 3)};
  EXPECT_TRUE(region.Contains({5, 5}));
  EXPECT_TRUE(SweepCell(cell, objs, 2.0, 4).empty());
}

TEST(SweepCellTest, StatsCountWork) {
  SweepStats stats;
  const std::vector<Vec2> objs = {{2, 2}, {2.5, 2.5}, {7, 7}};
  (void)SweepCell(Rect(0, 0, 10, 10), objs, 2.0, 1, &stats);
  EXPECT_GT(stats.x_strips, 0);
  EXPECT_GT(stats.y_sweeps, 0);
  EXPECT_GT(stats.dense_rects, 0);
}

// The definitive property: membership in the swept region coincides with
// the pointwise density definition at random probes (Definitions 2-3).
class SweepPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SweepPropertyTest, RegionMatchesPointwiseDefinition) {
  const auto [n_objs, l, n_min] = GetParam();
  Rng rng(static_cast<uint64_t>(n_objs * 1000 + n_min) ^
          static_cast<uint64_t>(l * 7));
  const Rect cell(0, 0, 20, 20);
  std::vector<Vec2> objs;
  objs.reserve(n_objs);
  for (int i = 0; i < n_objs; ++i) {
    // Positions inside the expanded window, clustered to make density
    // plausible.
    objs.push_back({rng.Uniform(-l, 20 + l), rng.Uniform(-l, 20 + l)});
  }
  const Region region{SweepCell(cell, objs, l, n_min)};
  for (int probe = 0; probe < 800; ++probe) {
    const Vec2 p{rng.Uniform(0, 20), rng.Uniform(0, 20)};
    const bool dense = BruteCount(objs, p, l) >= n_min;
    EXPECT_EQ(region.Contains(p), dense)
        << "p=" << p.ToString() << " l=" << l << " n_min=" << n_min;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SweepPropertyTest,
    ::testing::Combine(::testing::Values(10, 60, 250),
                       ::testing::Values(1.5, 4.0, 9.0),
                       ::testing::Values(1, 3, 8)));

// Regression property for the event-exactness contract: sweeping the
// whole domain at once and sweeping it cell by cell (each cell given only
// the positions inside its expanded window, as the FR engine does) must
// produce the *identical* point set — including at strips that start at
// cell boundaries rather than object events. A historical bug (counting
// with re-derived window bounds instead of the event coordinates) made
// the two disagree by slivers at exit events.
TEST(SweepPropertyTest, CellDecompositionInvariant) {
  Rng rng(303);
  const double extent = 60.0;
  for (double l : {7.0, 13.0}) {
    for (int iter = 0; iter < 3; ++iter) {
      std::vector<Vec2> positions;
      for (int i = 0; i < 250; ++i) {
        positions.push_back({rng.Uniform(0, extent), rng.Uniform(0, extent)});
      }
      const int64_t n_min = 4;
      const Region whole{
          SweepCell(Rect(0, 0, extent, extent), positions, l, n_min)};

      Region assembled;
      const Grid grid(extent, 4);
      for (int cell = 0; cell < grid.cell_count(); ++cell) {
        const Rect cell_rect = grid.CellRect(cell);
        const Rect window = cell_rect.Expanded(l / 2);
        std::vector<Vec2> local;
        for (const Vec2& p : positions) {
          if (window.ContainsClosed(p)) local.push_back(p);
        }
        for (const Rect& r : SweepCell(cell_rect, local, l, n_min)) {
          assembled.Add(r);
        }
      }
      EXPECT_NEAR(SymmetricDifferenceArea(whole, assembled), 0.0, 1e-9)
          << "l=" << l << " iter=" << iter;
      for (int probe = 0; probe < 400; ++probe) {
        const Vec2 p{rng.Uniform(0, extent), rng.Uniform(0, extent)};
        EXPECT_EQ(whole.Contains(p), assembled.Contains(p)) << p;
      }
    }
  }
}

TEST(SweepCellTest, NeighborhoodLargerThanCell) {
  // l wider than the cell itself: the band always spans the whole cell.
  const Rect cell(10, 10, 12, 12);
  std::vector<Vec2> objs;
  Rng rng(304);
  for (int i = 0; i < 60; ++i) {
    objs.push_back({rng.Uniform(0, 25), rng.Uniform(0, 25)});
  }
  const double l = 8.0;  // 4x the cell edge
  const Region region{SweepCell(cell, objs, l, 10)};
  for (int probe = 0; probe < 300; ++probe) {
    const Vec2 p{rng.Uniform(10, 12), rng.Uniform(10, 12)};
    int64_t count = 0;
    const Rect square = Rect::CenteredSquare(p, l);
    for (const Vec2& o : objs) count += square.ContainsLSquare(o);
    EXPECT_EQ(region.Contains(p), count >= 10) << p;
  }
}

// Events exactly on cell boundaries and coincident coordinates.
TEST(SweepCellTest, CoincidentEventCoordinates) {
  const Rect cell(0, 0, 10, 10);
  // Objects aligned so that entry/exit events coincide.
  const std::vector<Vec2> objs = {{3, 3}, {5, 3}, {7, 3}, {3, 5}, {5, 5}};
  const double l = 2.0;
  const Region region{SweepCell(cell, objs, l, 2)};
  Rng rng(8);
  for (int probe = 0; probe < 500; ++probe) {
    const Vec2 p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    EXPECT_EQ(region.Contains(p), BruteCount(objs, p, l) >= 2);
  }
  // Probe exactly at event-aligned points.
  for (const Vec2 p : {Vec2{4.0, 3.0}, Vec2{4.0, 4.0}, Vec2{2.0, 2.0},
                       Vec2{6.0, 4.0}}) {
    EXPECT_EQ(region.Contains(p), BruteCount(objs, p, l) >= 2) << p;
  }
}

}  // namespace
}  // namespace pdr
