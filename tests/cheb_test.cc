#include "pdr/cheb/chebyshev.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pdr/common/random.h"

namespace pdr {
namespace {

TEST(ChebTTest, LowDegreeClosedForms) {
  for (double x : {-1.0, -0.5, 0.0, 0.3, 1.0}) {
    EXPECT_NEAR(ChebT(0, x), 1.0, 1e-12);
    EXPECT_NEAR(ChebT(1, x), x, 1e-12);
    EXPECT_NEAR(ChebT(2, x), 2 * x * x - 1, 1e-12);
    EXPECT_NEAR(ChebT(3, x), 4 * x * x * x - 3 * x, 1e-12);
  }
}

TEST(ChebTTest, RecurrenceMatchesTrigForm) {
  Rng rng(3);
  double table[11];
  for (int iter = 0; iter < 200; ++iter) {
    const double x = rng.Uniform(-1, 1);
    ChebTAll(10, x, table);
    for (int k = 0; k <= 10; ++k) {
      EXPECT_NEAR(table[k], ChebT(k, x), 1e-9) << "k=" << k << " x=" << x;
    }
  }
}

TEST(ChebTTest, BoundedByOne) {
  Rng rng(4);
  for (int iter = 0; iter < 500; ++iter) {
    const double x = rng.Uniform(-1, 1);
    const int k = static_cast<int>(rng.UniformInt(0, 12));
    EXPECT_LE(std::fabs(ChebT(k, x)), 1.0 + 1e-12);
  }
}

TEST(ChebTTest, ClampsOutOfRangeInput) {
  EXPECT_NEAR(ChebT(3, 1.0 + 1e-12), ChebT(3, 1.0), 1e-9);
  EXPECT_NEAR(ChebT(5, -1.0 - 1e-12), ChebT(5, -1.0), 1e-9);
}

TEST(ChebTRangeTest, FullIntervalIsUnit) {
  for (int k = 1; k <= 8; ++k) {
    const Interval r = ChebTRange(k, -1.0, 1.0);
    EXPECT_DOUBLE_EQ(r.lo, -1.0);
    EXPECT_DOUBLE_EQ(r.hi, 1.0);
  }
  const Interval r0 = ChebTRange(0, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(r0.lo, 1.0);
  EXPECT_DOUBLE_EQ(r0.hi, 1.0);
}

TEST(ChebTRangeTest, DegreeOneIsIdentityRange) {
  const Interval r = ChebTRange(1, -0.25, 0.5);
  EXPECT_DOUBLE_EQ(r.lo, -0.25);
  EXPECT_DOUBLE_EQ(r.hi, 0.5);
}

// Property: the range bound is valid (contains all sampled values) and
// tight (achieved within sampling resolution).
TEST(ChebTRangeTest, ValidAndTightOnRandomSubintervals) {
  Rng rng(5);
  for (int iter = 0; iter < 300; ++iter) {
    const int k = static_cast<int>(rng.UniformInt(0, 9));
    double z1 = rng.Uniform(-1, 1);
    double z2 = rng.Uniform(-1, 1);
    if (z1 > z2) std::swap(z1, z2);
    const Interval r = ChebTRange(k, z1, z2);
    double seen_lo = 1e9, seen_hi = -1e9;
    for (int s = 0; s <= 200; ++s) {
      const double x = z1 + (z2 - z1) * s / 200.0;
      const double v = ChebT(k, x);
      EXPECT_GE(v, r.lo - 1e-9);
      EXPECT_LE(v, r.hi + 1e-9);
      seen_lo = std::min(seen_lo, v);
      seen_hi = std::max(seen_hi, v);
    }
    // Tightness: the bound is no looser than what dense sampling finds,
    // within the sampling error of a degree-k cosine.
    const double slack = 0.01 * (k + 1) * (k + 1);
    EXPECT_GE(seen_lo, r.lo - 1e-9);
    EXPECT_LE(r.lo, seen_lo + slack);
    EXPECT_GE(r.hi, seen_hi - slack * 0 - 1e-9);
    EXPECT_LE(seen_hi, r.hi + 1e-9);
    EXPECT_LE(r.hi - seen_hi, slack);
  }
}

TEST(ChebWeightedIntegralTest, MatchesNumericQuadrature) {
  // Compare against midpoint quadrature in theta space:
  // Int T_i(x)/sqrt(1-x^2) dx = Int cos(i*theta) dtheta.
  Rng rng(6);
  for (int iter = 0; iter < 100; ++iter) {
    const int i = static_cast<int>(rng.UniformInt(0, 8));
    double z1 = rng.Uniform(-1, 1);
    double z2 = rng.Uniform(-1, 1);
    if (z1 > z2) std::swap(z1, z2);
    const double t1 = std::acos(z1), t2 = std::acos(z2);  // t1 >= t2
    double numeric = 0;
    const int steps = 2000;
    for (int s = 0; s < steps; ++s) {
      const double theta = t2 + (t1 - t2) * (s + 0.5) / steps;
      numeric += std::cos(i * theta);
    }
    numeric *= (t1 - t2) / steps;
    EXPECT_NEAR(ChebWeightedIntegral(i, z1, z2), numeric, 1e-6)
        << "i=" << i << " z=[" << z1 << "," << z2 << "]";
  }
}

TEST(ChebWeightedIntegralTest, FullIntervalOrthogonality) {
  // Over [-1,1]: integral is pi for i=0 and 0 for i>=1.
  EXPECT_NEAR(ChebWeightedIntegral(0, -1, 1), M_PI, 1e-12);
  for (int i = 1; i <= 8; ++i) {
    EXPECT_NEAR(ChebWeightedIntegral(i, -1, 1), 0.0, 1e-12) << i;
  }
}

TEST(ChebWeightedIntegralTest, EmptyIntervalIsZero) {
  for (int i = 0; i <= 5; ++i) {
    EXPECT_NEAR(ChebWeightedIntegral(i, 0.3, 0.3), 0.0, 1e-12);
  }
}

TEST(ChebWeightedIntegralTest, Additivity) {
  Rng rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    const int i = static_cast<int>(rng.UniformInt(0, 6));
    double z[3] = {rng.Uniform(-1, 1), rng.Uniform(-1, 1),
                   rng.Uniform(-1, 1)};
    std::sort(z, z + 3);
    EXPECT_NEAR(ChebWeightedIntegral(i, z[0], z[2]),
                ChebWeightedIntegral(i, z[0], z[1]) +
                    ChebWeightedIntegral(i, z[1], z[2]),
                1e-12);
  }
}

TEST(ChebWeightedIntegralTest, BatchMatchesScalar) {
  Rng rng(9);
  double out[12];
  for (int iter = 0; iter < 200; ++iter) {
    double z1 = rng.Uniform(-1, 1);
    double z2 = rng.Uniform(-1, 1);
    if (z1 > z2) std::swap(z1, z2);
    ChebWeightedIntegralAll(11, z1, z2, out);
    for (int i = 0; i <= 11; ++i) {
      EXPECT_NEAR(out[i], ChebWeightedIntegral(i, z1, z2), 1e-10)
          << "i=" << i;
    }
  }
}

TEST(IntervalTest, Arithmetic) {
  const Interval a{-1, 2};
  const Interval b{3, 4};
  const Interval sum = a + b;
  EXPECT_DOUBLE_EQ(sum.lo, 2);
  EXPECT_DOUBLE_EQ(sum.hi, 6);
  const Interval prod = a * b;  // {-4, 8}
  EXPECT_DOUBLE_EQ(prod.lo, -4);
  EXPECT_DOUBLE_EQ(prod.hi, 8);
  const Interval neg = a * -2.0;
  EXPECT_DOUBLE_EQ(neg.lo, -4);
  EXPECT_DOUBLE_EQ(neg.hi, 2);
  EXPECT_TRUE(a.Contains(0));
  EXPECT_FALSE(a.Contains(3));
}

TEST(IntervalTest, ProductCoversAllSignCombinations) {
  Rng rng(8);
  for (int iter = 0; iter < 200; ++iter) {
    Interval a{rng.Uniform(-5, 5), 0};
    a.hi = a.lo + rng.Uniform(0, 5);
    Interval b{rng.Uniform(-5, 5), 0};
    b.hi = b.lo + rng.Uniform(0, 5);
    const Interval prod = a * b;
    for (int s = 0; s <= 10; ++s) {
      const double x = a.lo + (a.hi - a.lo) * s / 10.0;
      for (int t = 0; t <= 10; ++t) {
        const double y = b.lo + (b.hi - b.lo) * t / 10.0;
        EXPECT_GE(x * y, prod.lo - 1e-9);
        EXPECT_LE(x * y, prod.hi + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace pdr
