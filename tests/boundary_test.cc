// Property test for Definition 1's l-square edge semantics.
//
// The paper's l-square of a point p includes its top and right edges and
// excludes its left and bottom edges (so translated copies of the square
// tile the plane without double counting). Objects placed *exactly* on
// those edges are where the filter, the range query, and the plane sweep
// can silently disagree by one object — which flips a cell's dense
// verdict whenever rho sits between the two counts. This file pins the
// convention directly on the brute-force oracle, then drives 100 seeded
// placements of edge-exact objects (integer coordinates, exactly
// representable, aligned to histogram cell boundaries) through the full
// FR engine and compares against the oracle with thresholds chosen a
// half-object above and below each anchor's exact count.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "pdr/common/random.h"
#include "pdr/core/fr_engine.h"
#include "pdr/core/oracle.h"

namespace pdr {
namespace {

constexpr double kExtent = 200.0;
constexpr double kL = 20.0;   // two histogram cells at m = 20
constexpr Tick kQt = 4;

MotionState StateReaching(Vec2 target, double vx, double vy, Tick at) {
  MotionState s;
  s.pos = {target.x - vx * static_cast<double>(at),
           target.y - vy * static_cast<double>(at)};
  s.vel = {vx, vy};
  s.t_ref = 0;
  return s;
}

TEST(BoundaryTest, OracleCountsClosedTopRightOpenLeftBottom) {
  Oracle oracle(kExtent);
  const Vec2 c{100.0, 100.0};
  const double h = kL / 2;
  struct Placement {
    Vec2 pos;
    bool counted;
    const char* what;
  };
  const Placement placements[] = {
      {{c.x, c.y}, true, "center"},
      {{c.x - h, c.y}, false, "left edge"},
      {{c.x + h, c.y}, true, "right edge"},
      {{c.x, c.y - h}, false, "bottom edge"},
      {{c.x, c.y + h}, true, "top edge"},
      {{c.x + h, c.y + h}, true, "top-right corner"},
      {{c.x - h, c.y - h}, false, "bottom-left corner"},
      {{c.x - h, c.y + h}, false, "top-left corner"},
      {{c.x + h, c.y - h}, false, "bottom-right corner"},
  };
  ObjectId id = 1;
  for (const Placement& p : placements) {
    UpdateEvent e;
    e.tick = 0;
    e.id = id++;
    e.new_state = StateReaching(p.pos, 0, 0, 0);
    oracle.Apply(e);
  }
  int64_t want = 0;
  for (const Placement& p : placements) want += p.counted ? 1 : 0;
  EXPECT_EQ(oracle.CountInSquare(0, c, kL), want);

  // And one by one: each placement alone counts iff its edge is closed.
  for (const Placement& p : placements) {
    Oracle solo(kExtent);
    UpdateEvent e;
    e.tick = 0;
    e.id = 1;
    e.new_state = StateReaching(p.pos, 0, 0, 0);
    solo.Apply(e);
    EXPECT_EQ(solo.CountInSquare(0, c, kL), p.counted ? 1 : 0) << p.what;
  }
}

TEST(BoundaryTest, FrMatchesOracleOnEdgeExactPlacements) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed * 7919 + 13);
    FrEngine fr({.extent = kExtent,
                 .histogram_side = 20,
                 .horizon = 16,
                 .buffer_pages = 64,
                 .io_ms = 10.0});
    Oracle oracle(kExtent);
    ObjectId next_id = 1;
    std::vector<Vec2> targets;  // predicted positions at kQt, all exact
    auto add = [&](Vec2 target, double vx, double vy) {
      UpdateEvent e;
      e.tick = 0;
      e.id = next_id++;
      e.new_state = StateReaching(target, vx, vy, kQt);
      fr.Apply(e);
      oracle.Apply(e);
      targets.push_back(target);
    };

    // Anchors on interior histogram cell corners: the l-square edges of
    // an anchor then lie exactly on cell boundaries too, stressing the
    // filter's conservative counts at the same time as the sweep.
    std::vector<Vec2> anchors;
    for (int a = 0; a < 3; ++a) {
      anchors.push_back({10.0 * static_cast<double>(rng.UniformInt(3, 17)),
                         10.0 * static_cast<double>(rng.UniformInt(3, 17))});
    }
    const double h = kL / 2;
    for (const Vec2& c : anchors) {
      // One object exactly on each edge (offset along the edge is a
      // multiple of 5, exactly representable), plus two corners and one
      // interior object. Integer velocities keep the predicted position
      // at kQt exact: pos = target - v * kQt has no rounding.
      const double t1 = 5.0 * static_cast<double>(rng.UniformInt(-1, 1));
      const double t2 = 5.0 * static_cast<double>(rng.UniformInt(-1, 1));
      const auto vel = [&] {
        return static_cast<double>(rng.UniformInt(-2, 2));
      };
      add({c.x - h, c.y + t1}, vel(), vel());  // left edge: excluded
      add({c.x + h, c.y + t2}, vel(), vel());  // right edge: included
      add({c.x + t1, c.y - h}, vel(), vel());  // bottom edge: excluded
      add({c.x + t2, c.y + h}, vel(), vel());  // top edge: included
      add({c.x + h, c.y + h}, vel(), vel());   // top-right corner: included
      add({c.x - h, c.y - h}, vel(), vel());   // bottom-left: excluded
      add({c.x, c.y}, vel(), vel());           // interior
    }

    for (const Vec2& c : anchors) {
      const int64_t n = oracle.CountInSquare(kQt, c, kL);
      ASSERT_GE(n, 1) << "anchor lost its objects (seed " << seed << ")";
      // Thresholds straddling the exact count: one object miscounted on
      // any edge flips the dense verdict at the anchor.
      for (const double delta : {-0.5, +0.5}) {
        const double rho = (static_cast<double>(n) + delta) / (kL * kL);
        const auto got = fr.Query(kQt, rho, kL);
        const Region want = oracle.DenseRegions(kQt, rho, kL);
        EXPECT_NEAR(SymmetricDifferenceArea(got.region, want), 0.0, 1e-9)
            << "seed " << seed << " anchor " << c.ToString() << " rho*l2="
            << static_cast<double>(n) + delta;
        // Membership probes at every edge-exact position and anchor.
        for (const Vec2& p : targets) {
          EXPECT_EQ(got.region.Contains(p), want.Contains(p))
              << "seed " << seed << " at " << p.ToString();
        }
        for (const Vec2& a : anchors) {
          EXPECT_EQ(got.region.Contains(a), want.Contains(a))
              << "seed " << seed << " anchor " << a.ToString();
        }
      }
    }
  }
}

}  // namespace
}  // namespace pdr
