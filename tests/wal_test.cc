// Unit tests for the durability primitives: StorageFile, FaultInjector,
// the physical-page WAL, and the DiskPager checkpoint/recovery protocol.
// The end-to-end crash sweep (every kill point x every crash mode) lives
// in recovery_test.cc; this file pins the layer-by-layer contracts those
// sweeps rest on.

#include "pdr/storage/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "pdr/common/errors.h"
#include "pdr/storage/disk_pager.h"
#include "pdr/storage/fault_injector.h"
#include "pdr/storage/storage_file.h"

namespace pdr {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pdr_storage_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    dir_ = dir != nullptr ? dir : "/tmp";
  }
  ~TempDir() { std::system(("rm -rf '" + dir_ + "'").c_str()); }
  const std::string& path() const { return dir_; }
  std::string File(const std::string& name) const { return dir_ + "/" + name; }

 private:
  std::string dir_;
};

Page MakePage(uint8_t fill) {
  Page p;
  p.bytes.fill(std::byte{fill});
  return p;
}

// ---------------------------------------------------------------- StorageFile

TEST(StorageFileTest, ReadPastEofZeroFills) {
  TempDir dir;
  StorageFile f;
  f.Open(dir.File("f"), "t", nullptr);
  const char data[] = "hello";
  f.WriteAt(0, data, 5);
  char buf[16];
  std::memset(buf, 0x5a, sizeof(buf));
  const size_t from_file = f.ReadAt(0, buf, sizeof(buf));
  EXPECT_EQ(from_file, 5u);
  EXPECT_EQ(std::memcmp(buf, "hello", 5), 0);
  for (size_t i = 5; i < sizeof(buf); ++i) {
    EXPECT_EQ(buf[i], 0) << "byte " << i << " not zero-filled";
  }
}

TEST(StorageFileTest, TornWriteKeepsDeterministicPrefix) {
  TempDir dir;
  FaultInjector inject(/*seed=*/7);
  std::string persisted[2];
  for (int run = 0; run < 2; ++run) {
    const std::string path = dir.File("torn" + std::to_string(run));
    FaultInjector run_inject(/*seed=*/7);
    run_inject.Arm(0, CrashMode::kTornWrite);
    StorageFile f;
    f.Open(path, "t", &run_inject);
    std::string data(1000, 'x');
    EXPECT_THROW(f.WriteAt(0, data.data(), data.size()), CrashError);
    EXPECT_TRUE(f.poisoned());
    // Poisoned: later writes are silent no-ops (the process is "dead").
    f.WriteAt(0, data.data(), data.size());
    std::ifstream in(path, std::ios::binary);
    std::string got((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_LT(got.size(), data.size());
    persisted[run] = got;
  }
  EXPECT_EQ(persisted[0], persisted[1]) << "torn prefix not deterministic";
}

TEST(StorageFileTest, AtomicWriteSurvivesOrDisappearsWhole) {
  TempDir dir;
  const std::string path = dir.File("atomic");
  AtomicWriteFile(path, "first version", "a", nullptr);
  std::string got;
  ASSERT_TRUE(ReadFileIfExists(path, &got));
  EXPECT_EQ(got, "first version");

  // Crash at every fault point of the second publication: afterwards the
  // file holds either the old or the complete new contents, never a mix.
  for (int64_t k = 0;; ++k) {
    FaultInjector inject;
    inject.Arm(k, CrashMode::kTornWrite);
    bool crashed = false;
    try {
      AtomicWriteFile(path, "second version", "a", &inject);
    } catch (const CrashError&) {
      crashed = true;
    }
    ASSERT_TRUE(ReadFileIfExists(path, &got));
    EXPECT_TRUE(got == "first version" || got == "second version")
        << "fault point " << k << " left: " << got;
    if (!crashed) break;  // ran past the last fault point: publication done
    // Re-publish the base version for the next iteration if needed.
    AtomicWriteFile(path, "first version", "a", nullptr);
  }
}

TEST(StorageFileTest, AtomicWriteEndsWithDirectoryFsync) {
  // The rename only becomes durable once the containing directory is
  // fsynced; pin that the publication protocol ends with that point.
  TempDir dir;
  FaultInjector counter;
  AtomicWriteFile(dir.File("pub"), "v", "a", &counter);
  ASSERT_FALSE(counter.op_log().empty());
  EXPECT_EQ(counter.op_log().back(), "a.dirsync");
  std::string got;
  ASSERT_TRUE(ReadFileIfExists(dir.File("pub"), &got));
  EXPECT_EQ(got, "v");
}

// -------------------------------------------------------------- FaultInjector

TEST(FaultInjectorTest, CountsOpsIdenticallyArmedOrNot) {
  TempDir dir;
  auto run = [&](FaultInjector* inject, const std::string& name) {
    StorageFile f;
    f.Open(dir.File(name), "t", inject);
    const char data[] = "abc";
    f.WriteAt(0, data, 3);
    f.Sync();
    f.WriteAt(3, data, 3);
    f.Sync();
  };
  FaultInjector rehearsal;
  run(&rehearsal, "a");
  EXPECT_EQ(rehearsal.ops_seen(), 4);
  EXPECT_EQ(rehearsal.op_log().size(), 4u);
  EXPECT_EQ(rehearsal.op_log()[0], "t.write");
  EXPECT_EQ(rehearsal.op_log()[1], "t.sync");

  FaultInjector armed;
  armed.Arm(99, CrashMode::kClean);  // never fires
  run(&armed, "b");
  EXPECT_EQ(armed.ops_seen(), rehearsal.ops_seen());
  EXPECT_FALSE(armed.fired());
}

TEST(FaultInjectorTest, FiresExactlyOnce) {
  FaultInjector inject;
  inject.Arm(1, CrashMode::kClean);
  EXPECT_EQ(inject.OnOp("x"), FaultInjector::Action::kProceed);
  EXPECT_EQ(inject.OnOp("x"), FaultInjector::Action::kCrash);
  EXPECT_TRUE(inject.fired());
  // Same index never fires again (ops_seen keeps advancing).
  EXPECT_EQ(inject.OnOp("x"), FaultInjector::Action::kProceed);
  EXPECT_EQ(inject.ops_seen(), 3);
}

// ------------------------------------------------------------------------ Wal

TEST(WalTest, AppendScanRoundTrip) {
  TempDir dir;
  Wal wal(dir.File("wal.log"), WalOptions{}, nullptr);
  const Page a = MakePage(0xaa);
  const Page b = MakePage(0xbb);
  wal.AppendPage(3, a);
  wal.AppendPage(7, b);
  wal.AppendCommit("meta-blob-1");
  wal.AppendPage(3, b);
  wal.AppendCommit("meta-blob-2");
  wal.Sync();

  const Wal::ScanResult scan = wal.Scan();
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.records_discarded, 0);
  ASSERT_EQ(scan.batches.size(), 2u);
  ASSERT_EQ(scan.batches[0].pages.size(), 2u);
  EXPECT_EQ(scan.batches[0].pages[0].id, 3u);
  EXPECT_EQ(scan.batches[0].pages[0].lsn, 0u);
  EXPECT_EQ(scan.batches[0].pages[0].image.bytes, a.bytes);
  EXPECT_EQ(scan.batches[0].pages[1].id, 7u);
  EXPECT_EQ(scan.batches[0].pages[1].lsn, 1u);
  EXPECT_EQ(scan.batches[0].commit_payload, "meta-blob-1");
  ASSERT_EQ(scan.batches[1].pages.size(), 1u);
  EXPECT_EQ(scan.batches[1].pages[0].image.bytes, b.bytes);
  EXPECT_EQ(scan.batches[1].commit_payload, "meta-blob-2");
  EXPECT_EQ(scan.next_lsn, 5u);
}

TEST(WalTest, UncommittedTailIsDiscarded) {
  TempDir dir;
  Wal wal(dir.File("wal.log"), WalOptions{}, nullptr);
  wal.AppendPage(0, MakePage(1));
  wal.AppendCommit("committed");
  wal.AppendPage(1, MakePage(2));  // no commit follows
  wal.Sync();

  const Wal::ScanResult scan = wal.Scan();
  ASSERT_EQ(scan.batches.size(), 1u);
  EXPECT_EQ(scan.batches[0].commit_payload, "committed");
  EXPECT_EQ(scan.records_discarded, 1);
  EXPECT_FALSE(scan.torn_tail);  // valid records, just uncommitted
}

TEST(WalTest, TruncatedTailStopsScanCleanly) {
  TempDir dir;
  const std::string path = dir.File("wal.log");
  uint64_t full_size = 0;
  {
    Wal wal(path, WalOptions{}, nullptr);
    wal.AppendPage(0, MakePage(1));
    wal.AppendCommit("one");
    wal.AppendPage(1, MakePage(2));
    wal.AppendCommit("two");
    wal.Sync();
    full_size = wal.file_bytes();
  }
  // Chop the file mid-record (inside the second batch) and rescan.
  {
    StorageFile f;
    f.Open(path, "t", nullptr);
    f.Truncate(full_size - kPageSize / 2);
  }
  Wal wal(path, WalOptions{}, nullptr);
  const Wal::ScanResult scan = wal.Scan();
  ASSERT_EQ(scan.batches.size(), 1u);
  EXPECT_EQ(scan.batches[0].commit_payload, "one");
  // Truncation leaves no valid record past the damage: a crash artifact,
  // not device damage.
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_FALSE(scan.interior_corruption);
}

TEST(WalTest, CorruptChecksumStopsScan) {
  TempDir dir;
  const std::string path = dir.File("wal.log");
  {
    Wal wal(path, WalOptions{}, nullptr);
    wal.AppendPage(0, MakePage(1));
    wal.AppendCommit("one");
    wal.AppendPage(1, MakePage(2));
    wal.AppendCommit("two");
    wal.Sync();
  }
  // Flip one payload byte inside the second batch's page record. The
  // commit record for "two" sits intact *beyond* the damage, which no
  // torn write can produce (appends damage only the tail): the scan
  // still stops there, but classifies the log as interior-corrupt
  // rather than torn.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<uint64_t>(f.tellg());
    f.seekp(static_cast<std::streamoff>(size - kPageSize / 2));
    char byte = 0x7f;
    f.write(&byte, 1);
  }
  Wal wal(path, WalOptions{}, nullptr);
  const Wal::ScanResult scan = wal.Scan();
  ASSERT_EQ(scan.batches.size(), 1u);
  EXPECT_EQ(scan.batches[0].commit_payload, "one");
  EXPECT_TRUE(scan.interior_corruption);
  EXPECT_FALSE(scan.torn_tail);
}

TEST(WalTest, DamagedFinalRecordIsTornNotInterior) {
  // Damage whose only casualty is the *last* record is indistinguishable
  // from a torn append — there is no valid record beyond it — so it must
  // classify as torn_tail, keeping the crash sweeps quiet.
  TempDir dir;
  const std::string path = dir.File("wal.log");
  {
    Wal wal(path, WalOptions{}, nullptr);
    wal.AppendPage(0, MakePage(1));
    wal.AppendCommit("one");
    wal.AppendPage(1, MakePage(2));
    wal.AppendCommit("two");
    wal.Sync();
  }
  // Flip a byte inside the final (commit) record's checksum region: the
  // last few bytes of the file.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<uint64_t>(f.tellg());
    f.seekp(static_cast<std::streamoff>(size - 1));
    char byte = 0x7f;
    f.write(&byte, 1);
  }
  Wal wal(path, WalOptions{}, nullptr);
  const Wal::ScanResult scan = wal.Scan();
  ASSERT_EQ(scan.batches.size(), 1u);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_FALSE(scan.interior_corruption);
}

TEST(WalTest, ResetEmptiesLogAndKeepsLsnMonotone) {
  TempDir dir;
  Wal wal(dir.File("wal.log"), WalOptions{}, nullptr);
  wal.AppendPage(0, MakePage(1));
  wal.AppendCommit("one");
  wal.Sync();
  const Lsn before = wal.next_lsn();
  wal.Reset();
  EXPECT_EQ(wal.next_lsn(), before);
  const Wal::ScanResult scan = wal.Scan();
  EXPECT_TRUE(scan.batches.empty());
  EXPECT_EQ(scan.next_lsn, before);
  // New records continue the LSN sequence.
  wal.AppendCommit("two");
  wal.Sync();
  const Wal::ScanResult rescan = wal.Scan();
  ASSERT_EQ(rescan.batches.size(), 1u);
  EXPECT_EQ(rescan.batches[0].commit_lsn, before);
}

TEST(WalTest, AppendOnReopenedNonEmptyLogRequiresReset) {
  TempDir dir;
  const std::string path = dir.File("wal.log");
  {
    Wal wal(path, WalOptions{}, nullptr);
    wal.AppendPage(0, MakePage(1));
    wal.AppendCommit("one");
    wal.Sync();
  }
  Wal wal(path, WalOptions{}, nullptr);
  // Blind appends would land beyond record bytes Scan may not be able to
  // cross (duplicate LSNs after a torn region): refuse until Reset.
  EXPECT_THROW(wal.AppendPage(1, MakePage(2)), std::logic_error);
  const Wal::ScanResult scan = wal.Scan();
  ASSERT_EQ(scan.batches.size(), 1u);
  wal.set_next_lsn(scan.next_lsn);
  wal.Reset();
  wal.AppendCommit("two");  // now fine
  wal.Sync();
  const Wal::ScanResult rescan = wal.Scan();
  ASSERT_EQ(rescan.batches.size(), 1u);
  EXPECT_EQ(rescan.batches[0].commit_lsn, scan.next_lsn);
}

TEST(WalTest, GroupCommitIsOneFsyncPerSync) {
  TempDir dir;
  Wal wal(dir.File("wal.log"), WalOptions{}, nullptr);
  for (int i = 0; i < 50; ++i) wal.AppendPage(static_cast<PageId>(i),
                                              MakePage(static_cast<uint8_t>(i)));
  wal.AppendCommit("batch");
  EXPECT_EQ(wal.stats().fsyncs, 0);  // appends never touch the disk
  wal.Sync();
  EXPECT_EQ(wal.stats().fsyncs, 1);
  EXPECT_EQ(wal.stats().records, 51);
  EXPECT_EQ(wal.stats().commits, 1);
}

// ------------------------------------------------------------------ DiskPager

TEST(DiskPagerTest, CheckpointAndReopenRestoresPagesAndMeta) {
  TempDir dir;
  PageId id0 = 0, id1 = 0;
  {
    DiskPager pager(dir.path());
    EXPECT_FALSE(pager.recovered());
    id0 = pager.Allocate();
    id1 = pager.Allocate();
    pager.WritePage(id0, MakePage(0x11));
    pager.WritePage(id1, MakePage(0x22));
    pager.Checkpoint("app-meta-v1");
    EXPECT_EQ(pager.dirty_page_count(), 0u);
    // Post-checkpoint mutation that is never checkpointed: must not
    // survive the reopen.
    pager.WritePage(id1, MakePage(0x99));
  }
  DiskPager reopened(dir.path());
  EXPECT_TRUE(reopened.recovered());
  EXPECT_EQ(reopened.recovered_meta(), "app-meta-v1");
  EXPECT_EQ(reopened.allocated_pages(), 2u);
  Page p;
  reopened.ReadPage(id0, &p);
  EXPECT_EQ(p.bytes, MakePage(0x11).bytes);
  reopened.ReadPage(id1, &p);
  EXPECT_EQ(p.bytes, MakePage(0x22).bytes) << "uncheckpointed write leaked";
}

TEST(DiskPagerTest, FreeListSurvivesReopen) {
  TempDir dir;
  {
    DiskPager pager(dir.path());
    const PageId a = pager.Allocate();
    pager.Allocate();
    pager.Free(a);
    pager.Checkpoint("");
  }
  DiskPager reopened(dir.path());
  EXPECT_EQ(reopened.allocated_pages(), 2u);
  EXPECT_EQ(reopened.live_pages(), 1u);
  // The freed id is reused first, exactly as the pre-crash pager would.
  EXPECT_EQ(reopened.Allocate(), 0u);
}

TEST(DiskPagerTest, EpochAdvancesPerCheckpoint) {
  TempDir dir;
  {
    DiskPager pager(dir.path());
    pager.Allocate();
    pager.Checkpoint("a");
    pager.Checkpoint("b");
    EXPECT_EQ(pager.epoch(), 2u);
  }
  DiskPager reopened(dir.path());
  EXPECT_EQ(reopened.epoch(), 2u);
  EXPECT_EQ(reopened.recovered_meta(), "b");
}

TEST(DiskPagerTest, MirrorValidatesFreeLikeMemPager) {
  TempDir dir;
  DiskPager pager(dir.path());
  const PageId id = pager.Allocate();
  pager.Free(id);
  EXPECT_THROW(pager.Free(id), std::invalid_argument);
  EXPECT_THROW(pager.Free(1234), std::invalid_argument);
}

TEST(DiskPagerTest, CrashDuringCheckpointPoisonsAndKeepsOldState) {
  TempDir dir;
  {
    DiskPager pager(dir.path());
    pager.Allocate();
    pager.WritePage(0, MakePage(0x11));
    pager.Checkpoint("v1");
  }
  {
    FaultInjector inject;
    DiskPager pager(dir.path(), &inject);
    pager.WritePage(0, MakePage(0x22));
    // First fault point of the checkpoint: the WAL append flush. Nothing
    // durable happened yet, so v1 must survive.
    inject.Arm(inject.ops_seen(), CrashMode::kTornWrite);
    EXPECT_THROW(pager.Checkpoint("v2"), CrashError);
    EXPECT_TRUE(pager.poisoned());
  }
  DiskPager reopened(dir.path());
  EXPECT_EQ(reopened.recovered_meta(), "v1");
  Page p;
  reopened.ReadPage(0, &p);
  EXPECT_EQ(p.bytes, MakePage(0x11).bytes);
}

TEST(DiskPagerTest, CommittedBatchSurvivesCrashInEarlierWalReset) {
  // Two-crash regression: crash #1 hits Wal::Reset between the truncate
  // and the header write, so reopening re-stamps a fresh header with
  // start_lsn=0 while the checkpoint's LSN is ahead. The next checkpoint
  // then appends records at the checkpoint LSN; crash #2 hits after its
  // commit fsync (the durable point) but mid-convergence. Recovery #3
  // must still apply that committed batch — a header whose start LSN was
  // never realigned would make its first record look like a torn tail
  // and silently discard durable data over partially-converged pages.

  // Rehearse one fresh-store checkpoint to find the Reset's header
  // write: the op right after the first wal.truncate.
  int64_t reset_header_write = -1;
  {
    TempDir r;
    FaultInjector counter;
    DiskPager pager(r.path(), &counter);
    pager.Allocate();
    pager.Allocate();
    pager.WritePage(0, MakePage(0x11));
    pager.WritePage(1, MakePage(0x22));
    pager.Checkpoint("v1");
    // The *last* wal.truncate: the fresh-store Wal constructor also
    // truncates, but the checkpoint's Reset is the final one.
    const auto& log = counter.op_log();
    for (size_t i = 0; i < log.size(); ++i) {
      if (log[i] == "wal.truncate") reset_header_write = static_cast<int64_t>(i) + 1;
    }
    ASSERT_GT(reset_header_write, 0);
    ASSERT_EQ(log[static_cast<size_t>(reset_header_write)], "wal.write");
  }

  // Crash #1, identically into two dirs: A rehearses run 2's op indices,
  // B takes run 2's armed crash (run 2 mutates the store, so the
  // rehearsal needs its own copy of the crash state).
  TempDir dirs[2];
  for (TempDir& dir : dirs) {
    FaultInjector inject;
    inject.Arm(reset_header_write, CrashMode::kClean);
    DiskPager pager(dir.path(), &inject);
    pager.Allocate();
    pager.Allocate();
    pager.WritePage(0, MakePage(0x11));
    pager.WritePage(1, MakePage(0x22));
    EXPECT_THROW(pager.Checkpoint("v1"), CrashError);
    // v1 is fully published; only the WAL reset was torn apart.
    std::string raw;
    ASSERT_TRUE(ReadFileIfExists(dir.File("checkpoint.pdr"), &raw));
  }

  // Run 2 rehearsal on A: recover, dirty both pages, checkpoint v2.
  // Crash target: the second data.write after v2's commit fsync (the
  // wal.sync directly followed by data convergence) — the batch is
  // durable, convergence is half done.
  int64_t mid_converge_write = -1;
  {
    FaultInjector counter;
    DiskPager pager(dirs[0].path(), &counter);
    EXPECT_TRUE(pager.recovered());
    pager.WritePage(0, MakePage(0x33));
    pager.WritePage(1, MakePage(0x44));
    pager.Checkpoint("v2");
    const auto& log = counter.op_log();
    for (size_t i = 0; i + 2 < log.size(); ++i) {
      if (log[i] == "wal.sync" && log[i + 1] == "data.write") {
        mid_converge_write = static_cast<int64_t>(i) + 2;
        break;
      }
    }
    ASSERT_GT(mid_converge_write, 0);
    ASSERT_EQ(log[static_cast<size_t>(mid_converge_write)], "data.write");
  }

  // Crash #2 on B at that op.
  {
    FaultInjector inject;
    inject.Arm(mid_converge_write, CrashMode::kClean);
    DiskPager pager(dirs[1].path(), &inject);
    EXPECT_TRUE(pager.recovered());
    pager.WritePage(0, MakePage(0x33));
    pager.WritePage(1, MakePage(0x44));
    EXPECT_THROW(pager.Checkpoint("v2"), CrashError);
  }

  // Recovery #3: the fsynced v2 batch must win.
  DiskPager reopened(dirs[1].path());
  EXPECT_TRUE(reopened.recovered());
  EXPECT_EQ(reopened.recovered_meta(), "v2");
  EXPECT_EQ(reopened.recovery_stats().batches_applied, 1);
  Page p;
  reopened.ReadPage(0, &p);
  EXPECT_EQ(p.bytes, MakePage(0x33).bytes);
  reopened.ReadPage(1, &p);
  EXPECT_EQ(p.bytes, MakePage(0x44).bytes);
}

TEST(DiskPagerTest, GarbageCheckpointFileIsRejected) {
  TempDir dir;
  {
    DiskPager pager(dir.path());
    pager.Allocate();
    pager.Checkpoint("v1");
  }
  {
    std::ofstream f(dir.File("checkpoint.pdr"),
                    std::ios::binary | std::ios::trunc);
    f << "this is not a checkpoint";
  }
  // checkpoint.pdr is published atomically, so a corrupt one is operator
  // damage, not a crash artifact: refuse loudly — with the typed
  // corruption error carrying file/offset/checksum forensics — rather
  // than silently starting empty.
  EXPECT_THROW(DiskPager pager(dir.path()), CorruptionError);
}

}  // namespace
}  // namespace pdr
