#include "pdr/core/fr_engine.h"

#include <gtest/gtest.h>

#include "pdr/common/random.h"
#include "pdr/core/metrics.h"
#include "pdr/core/oracle.h"
#include "pdr/core/simulation.h"
#include "pdr/mobility/generator.h"

namespace pdr {
namespace {

constexpr double kExtent = 200.0;

FrEngine::Options SmallOptions(int m = 20) {
  return {.extent = kExtent, .histogram_side = m, .horizon = 20,
          .buffer_pages = 64, .io_ms = 10.0};
}

void FeedStatic(FrEngine& fr, Oracle& oracle,
                const std::vector<UpdateEvent>& events) {
  for (const UpdateEvent& e : events) {
    fr.Apply(e);
    oracle.Apply(e);
  }
}

// Compares the FR answer with the oracle both by exact area measures and
// by membership probes (the regions may be carved into different
// rectangle decompositions, so compare as point sets).
void ExpectRegionsEqual(const Region& got, const Region& want,
                        uint64_t probe_seed) {
  EXPECT_NEAR(got.Area(), want.Area(), 1e-6);
  EXPECT_NEAR(SymmetricDifferenceArea(got, want), 0.0, 1e-6);
  Rng rng(probe_seed);
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{rng.Uniform(0, kExtent), rng.Uniform(0, kExtent)};
    EXPECT_EQ(got.Contains(p), want.Contains(p)) << p.ToString();
  }
}

class FrExactnessTest
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(FrExactnessTest, MatchesOracleOnClusteredWorkload) {
  const auto [rho_scale, l, m] = GetParam();
  FrEngine fr(SmallOptions(m));
  Oracle oracle(kExtent);
  FeedStatic(fr, oracle,
             MakeClusteredInserts(1500, 3, kExtent, 6.0, 0.25, 41));
  const double rho = rho_scale * 1500 / (kExtent * kExtent);
  const auto result = fr.Query(0, rho, l);
  const Region truth = oracle.DenseRegions(0, rho, l);
  ExpectRegionsEqual(result.region, truth,
                     static_cast<uint64_t>(rho_scale * 100 + l + m));
  // Filter accounting covers all cells.
  EXPECT_EQ(result.accepted_cells + result.rejected_cells +
                result.candidate_cells,
            m * m);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FrExactnessTest,
    ::testing::Combine(::testing::Values(0.8, 2.0, 8.0),
                       ::testing::Values(15.0, 25.0),
                       ::testing::Values(20, 40)));

TEST(FrEngineTest, ExactOnMovingObjectsAcrossTime) {
  FrEngine fr(SmallOptions());
  Oracle oracle(kExtent);
  FeedStatic(fr, oracle, MakeUniformInserts(1200, kExtent, 1.0, 42));
  const double rho = 3.0 * 1200 / (kExtent * kExtent);
  for (Tick q_t : {0, 5, 12, 20}) {
    const auto result = fr.Query(q_t, rho, 20.0);
    const Region truth = oracle.DenseRegions(q_t, rho, 20.0);
    ExpectRegionsEqual(result.region, truth, 42 + q_t);
  }
}

TEST(FrEngineTest, ExactThroughUpdateStream) {
  WorkloadConfig config;
  config.WithExtent(kExtent);
  config.num_objects = 800;
  config.max_update_interval = 10;
  config.network.grid_nodes = 8;
  config.seed = 43;
  const Dataset ds = GenerateDataset(config, 15);

  FrEngine fr(SmallOptions());
  Oracle oracle(kExtent);
  ReplayInto(ds, -1, &fr, &oracle);
  ASSERT_EQ(fr.now(), 15);

  const double rho = 4.0 * 800 / (kExtent * kExtent);
  for (Tick q_t = 15; q_t <= 25; q_t += 5) {  // within W = H - U = 10
    const auto result = fr.Query(q_t, rho, 20.0);
    const Region truth = oracle.DenseRegions(q_t, rho, 20.0);
    ExpectRegionsEqual(result.region, truth, 43 + q_t);
  }
}

TEST(FrEngineTest, EmptyAnswerWhenThresholdHuge) {
  FrEngine fr(SmallOptions());
  Oracle oracle(kExtent);
  FeedStatic(fr, oracle, MakeUniformInserts(500, kExtent, 0.5, 44));
  const auto result = fr.Query(0, 1e9, 20.0);
  EXPECT_TRUE(result.region.IsEmpty());
  EXPECT_EQ(result.candidate_cells, 0);
  EXPECT_EQ(result.objects_fetched, 0);
}

TEST(FrEngineTest, WholeDomainDenseWhenThresholdTiny) {
  FrEngine fr(SmallOptions());
  Oracle oracle(kExtent);
  FeedStatic(fr, oracle, MakeUniformInserts(4000, kExtent, 0.0, 45));
  // ~1 object per 10x10 area; threshold of ~1 object per l-square with
  // l=40 (16 expected) is met nearly everywhere except domain borders.
  const double rho = 1.0 / (40.0 * 40.0);
  const auto result = fr.Query(0, rho, 40.0);
  const Region truth = oracle.DenseRegions(0, rho, 40.0);
  ExpectRegionsEqual(result.region, truth, 45);
  EXPECT_GT(result.region.Area(), 0.5 * kExtent * kExtent);
}

TEST(FrEngineTest, CostAccountingChargesIo) {
  FrEngine fr(SmallOptions());
  Oracle oracle(kExtent);
  FeedStatic(fr, oracle,
             MakeClusteredInserts(3000, 4, kExtent, 8.0, 0.3, 46));
  const double rho = 2.0 * 3000 / (kExtent * kExtent);
  const auto cold = fr.Query(0, rho, 20.0, /*cold_cache=*/true);
  EXPECT_GT(cold.candidate_cells, 0);
  EXPECT_GT(cold.objects_fetched, 0);
  EXPECT_GT(cold.cost.io_reads(), 0);
  EXPECT_DOUBLE_EQ(cold.cost.io_ms, cold.cost.io_reads() * 10.0);
  EXPECT_GT(cold.cost.cpu_ms, 0.0);
  EXPECT_GT(cold.cost.TotalMs(), cold.cost.cpu_ms);
}

TEST(FrEngineTest, DhOnlyBracketsExactAnswer) {
  // Optimistic DH region must cover the exact answer; pessimistic must be
  // covered by it (soundness of the filter classes).
  FrEngine fr(SmallOptions());
  Oracle oracle(kExtent);
  FeedStatic(fr, oracle,
             MakeClusteredInserts(2000, 3, kExtent, 7.0, 0.2, 47));
  const double rho = 2.0 * 2000 / (kExtent * kExtent);
  const double l = 20.0;
  const Region exact = fr.Query(0, rho, l).region;
  const Region optimistic = fr.DhOnlyQuery(0, rho, l, true).region;
  const Region pessimistic = fr.DhOnlyQuery(0, rho, l, false).region;
  EXPECT_NEAR(IntersectionArea(optimistic, exact), exact.Area(), 1e-6)
      << "optimistic DH must cover the exact region";
  EXPECT_NEAR(IntersectionArea(exact, pessimistic), pessimistic.Area(), 1e-6)
      << "pessimistic DH must be inside the exact region";
  // And the bracket is strict on this workload.
  EXPECT_GT(optimistic.Area(), exact.Area());
  EXPECT_LT(pessimistic.Area(), exact.Area());
}

TEST(FrEngineTest, IntervalQueryIsUnionOfSnapshots) {
  FrEngine fr(SmallOptions());
  Oracle oracle(kExtent);
  FeedStatic(fr, oracle, MakeUniformInserts(1000, kExtent, 1.5, 48));
  const double rho = 4.0 * 1000 / (kExtent * kExtent);
  const auto interval = fr.QueryInterval(0, 6, rho, 18.0);
  const Region truth = oracle.DenseRegionsInterval(0, 6, rho, 18.0);
  EXPECT_NEAR(SymmetricDifferenceArea(interval.region, truth), 0.0, 1e-6);
}

TEST(FrEngineTest, BxBackedRefinementIsExactToo) {
  // The refinement step is index-agnostic (Section 4): running FR on the
  // B^x-tree must produce the identical exact answer.
  FrEngine::Options options = SmallOptions();
  options.index = IndexKind::kBxTree;
  options.max_update_interval = 20;
  FrEngine fr(options);
  Oracle oracle(kExtent);
  FeedStatic(fr, oracle,
             MakeClusteredInserts(1500, 3, kExtent, 6.0, 0.25, 50));
  for (double rho_scale : {1.0, 4.0}) {
    const double rho = rho_scale * 1500 / (kExtent * kExtent);
    const auto result = fr.Query(0, rho, 20.0);
    const Region truth = oracle.DenseRegions(0, rho, 20.0);
    ExpectRegionsEqual(result.region, truth, 50 + rho_scale);
  }
}

TEST(FrEngineTest, TprAndBxAgreeOnMovingWorkload) {
  FrEngine::Options tpr_options = SmallOptions();
  FrEngine::Options bx_options = SmallOptions();
  bx_options.index = IndexKind::kBxTree;
  bx_options.max_update_interval = 20;
  FrEngine fr_tpr(tpr_options);
  FrEngine fr_bx(bx_options);
  for (const UpdateEvent& e : MakeUniformInserts(1000, kExtent, 1.0, 51)) {
    fr_tpr.Apply(e);
    fr_bx.Apply(e);
  }
  const double rho = 3.0 * 1000 / (kExtent * kExtent);
  for (Tick q_t : {0, 8, 16}) {
    const Region a = fr_tpr.Query(q_t, rho, 20.0).region;
    const Region b = fr_bx.Query(q_t, rho, 20.0).region;
    EXPECT_NEAR(SymmetricDifferenceArea(a, b), 0.0, 1e-9) << "q_t=" << q_t;
  }
}

TEST(FrEngineTest, ExactUnderObjectChurn) {
  // Genuine insert/delete events (objects leaving, fresh ones arriving)
  // must keep every structure consistent and the answers exact.
  WorkloadConfig config;
  config.WithExtent(kExtent);
  config.num_objects = 600;
  config.max_update_interval = 10;
  config.churn_rate = 0.03;
  config.network.grid_nodes = 8;
  config.seed = 52;
  const Dataset ds = GenerateDataset(config, 20);

  for (IndexKind index : {IndexKind::kTprTree, IndexKind::kBxTree}) {
    FrEngine::Options options = SmallOptions();
    options.index = index;
    options.max_update_interval = 10;
    FrEngine fr(options);
    Oracle oracle(kExtent);
    ReplayInto(ds, -1, &fr, &oracle);
    EXPECT_EQ(fr.index().size(), 600u);
    const double rho = 4.0 * 600 / (kExtent * kExtent);
    for (Tick q_t : {20, 26}) {
      const auto result = fr.Query(q_t, rho, 20.0);
      const Region truth = oracle.DenseRegions(q_t, rho, 20.0);
      ExpectRegionsEqual(result.region, truth,
                         52 + q_t + static_cast<int>(index));
    }
  }
}

TEST(FrEngineTest, FinerHistogramReducesCandidates) {
  const auto events = MakeClusteredInserts(2000, 3, kExtent, 7.0, 0.2, 49);
  const double rho = 2.0 * 2000 / (kExtent * kExtent);
  int64_t candidates_coarse, candidates_fine;
  {
    FrEngine fr(SmallOptions(10));
    for (const UpdateEvent& e : events) fr.Apply(e);
    candidates_coarse = fr.Query(0, rho, 40.0).candidate_cells;
  }
  {
    FrEngine fr(SmallOptions(40));
    for (const UpdateEvent& e : events) fr.Apply(e);
    candidates_fine = fr.Query(0, rho, 40.0).candidate_cells;
  }
  // Candidate *area* shrinks with finer cells: compare normalized counts.
  const double area_coarse = candidates_coarse * (kExtent / 10) *
                             (kExtent / 10);
  const double area_fine = candidates_fine * (kExtent / 40) * (kExtent / 40);
  EXPECT_LT(area_fine, area_coarse);
}

}  // namespace
}  // namespace pdr
