#include "pdr/core/simulation.h"

#include <gtest/gtest.h>

#include "pdr/core/oracle.h"
#include "pdr/histogram/density_histogram.h"

namespace pdr {
namespace {

WorkloadConfig SmallWorkload() {
  WorkloadConfig config;
  config.WithExtent(100.0);
  config.num_objects = 300;
  config.max_update_interval = 10;
  config.network.grid_nodes = 6;
  config.seed = 81;
  return config;
}

// A sink that records what it saw, to verify replay ordering.
class RecordingSink final : public UpdateSink {
 public:
  void AdvanceTo(Tick now) override {
    EXPECT_GE(now, now_);
    now_ = now;
    ++advances;
  }
  void Apply(const UpdateEvent& update) override {
    EXPECT_EQ(update.tick, now_) << "updates must arrive at their tick";
    ++applied;
  }

  Tick now_ = 0;
  int advances = 0;
  size_t applied = 0;
};

TEST(ReplayTest, DeliversEveryUpdateInTickOrder) {
  const Dataset ds = GenerateDataset(SmallWorkload(), 12);
  RecordingSink sink;
  const auto timings = Replay(ds, {&sink});
  EXPECT_EQ(sink.applied, ds.TotalUpdates());
  EXPECT_EQ(sink.advances, 13);
  EXPECT_EQ(sink.now_, 12);
  ASSERT_EQ(timings.size(), 1u);
  EXPECT_EQ(timings[0].updates, ds.TotalUpdates());
  EXPECT_GT(timings[0].total_ms, 0.0);
}

TEST(ReplayTest, UptoStopsEarly) {
  const Dataset ds = GenerateDataset(SmallWorkload(), 12);
  RecordingSink sink;
  Replay(ds, {&sink}, /*upto=*/5);
  EXPECT_EQ(sink.now_, 5);
  size_t expected = 0;
  for (Tick t = 0; t <= 5; ++t) expected += ds.ticks[t].size();
  EXPECT_EQ(sink.applied, expected);
}

TEST(ReplayTest, UptoBeyondDurationIsClamped) {
  const Dataset ds = GenerateDataset(SmallWorkload(), 8);
  RecordingSink sink;
  Replay(ds, {&sink}, /*upto=*/100);
  EXPECT_EQ(sink.now_, 8);
}

TEST(ReplayTest, MultipleSinksSeeIdenticalStreams) {
  const Dataset ds = GenerateDataset(SmallWorkload(), 10);
  RecordingSink a, b, c;
  const auto timings = Replay(ds, {&a, &b, &c});
  EXPECT_EQ(a.applied, b.applied);
  EXPECT_EQ(b.applied, c.applied);
  EXPECT_EQ(timings.size(), 3u);
  for (const SinkTiming& t : timings) {
    EXPECT_EQ(t.updates, ds.TotalUpdates());
  }
}

TEST(ReplayIntoTest, AdaptsConcreteEngines) {
  const Dataset ds = GenerateDataset(SmallWorkload(), 10);
  Oracle oracle(100.0);
  DensityHistogram dh({100.0, 10, 15});
  const auto timings = ReplayInto(ds, -1, &oracle, &dh);
  ASSERT_EQ(timings.size(), 2u);
  EXPECT_EQ(oracle.size(), 300u);
  EXPECT_EQ(dh.TotalAt(10),
            static_cast<int64_t>(oracle.InDomainPositions(10).size()));
}

TEST(SinkTimingTest, PerUpdateMath) {
  SinkTiming t{10.0, 4000};
  EXPECT_DOUBLE_EQ(t.MsPerUpdate(), 0.0025);
  EXPECT_DOUBLE_EQ(t.UsPerUpdate(), 2.5);
  SinkTiming empty;
  EXPECT_DOUBLE_EQ(empty.MsPerUpdate(), 0.0);
}

}  // namespace
}  // namespace pdr
