// Tests for the observability layer (pdr/obs): registry semantics, span
// nesting and timing containment, JSONL round-trip, and thread safety.

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "pdr/obs/export.h"
#include "pdr/obs/obs.h"

namespace pdr {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON parser, just rich enough for the exporter's output, so the
// round-trip checks parse real JSON instead of substring-matching.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonObject>, std::shared_ptr<JsonArray>>
      v = nullptr;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }

  const JsonValue* Find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = object().find(key);
    return it == object().end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    EXPECT_EQ(pos_, s_.size()) << "trailing JSON garbage";
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char Peek() {
    SkipWs();
    EXPECT_LT(pos_, s_.size()) << "unexpected end of JSON";
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  char Next() {
    const char c = Peek();
    ++pos_;
    return c;
  }
  void Expect(char c) {
    const char got = Next();
    EXPECT_EQ(got, c) << "at position " << pos_;
  }

  JsonValue ParseValue() {
    const char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return JsonValue{ParseString()};
    if (c == 'n') {
      pos_ += 4;
      return JsonValue{nullptr};
    }
    if (c == 't') {
      pos_ += 4;
      return JsonValue{true};
    }
    if (c == 'f') {
      pos_ += 5;
      return JsonValue{false};
    }
    return ParseNumber();
  }

  JsonValue ParseObject() {
    Expect('{');
    auto obj = std::make_shared<JsonObject>();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (true) {
      const std::string key = ParseString();
      Expect(':');
      (*obj)[key] = ParseValue();
      const char c = Next();
      if (c == '}') break;
      EXPECT_EQ(c, ',');
      if (c != ',') break;
    }
    return JsonValue{obj};
  }

  JsonValue ParseArray() {
    Expect('[');
    auto arr = std::make_shared<JsonArray>();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    while (true) {
      arr->push_back(ParseValue());
      const char c = Next();
      if (c == ']') break;
      EXPECT_EQ(c, ',');
      if (c != ',') break;
    }
    return JsonValue{arr};
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            c = static_cast<char>(
                std::stoi(std::string(s_.substr(pos_, 4)), nullptr, 16));
            pos_ += 4;
            break;
          default: c = esc;
        }
      }
      out.push_back(c);
    }
    Expect('"');
    return out;
  }

  JsonValue ParseNumber() {
    SkipWs();
    size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    const double v = std::stod(std::string(s_.substr(pos_, end - pos_)));
    pos_ = end;
    return JsonValue{v};
  }

  std::string_view s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PdrObs::SetEnabled(true);
    PdrObs::SetTraceSink(nullptr);
    MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override { PdrObs::SetTraceSink(nullptr); }
};

// Tests that need counters to count / spans to open start with this so that
// a -DPDR_OBS=OFF build skips them instead of failing.
#define REQUIRE_OBS_COMPILED_IN()                                  \
  if (!PdrObs::CompiledIn())                                       \
  GTEST_SKIP() << "observability compiled out (PDR_OBS=OFF)"

TEST_F(ObsTest, CounterBasics) {
  REQUIRE_OBS_COMPILED_IN();
  Counter& c = MetricsRegistry::Global().GetCounter("test.counter");
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);

  // Same name returns the same counter; different name a different one.
  EXPECT_EQ(&MetricsRegistry::Global().GetCounter("test.counter"), &c);
  EXPECT_NE(&MetricsRegistry::Global().GetCounter("test.counter2"), &c);

  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST_F(ObsTest, CounterRespectsEnabledSwitch) {
  REQUIRE_OBS_COMPILED_IN();
  Counter& c = MetricsRegistry::Global().GetCounter("test.gated");
  PdrObs::SetEnabled(false);
  c.Add(5);
  EXPECT_EQ(c.value(), 0);
  PdrObs::SetEnabled(true);
  c.Add(5);
  EXPECT_EQ(c.value(), 5);
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  REQUIRE_OBS_COMPILED_IN();
  Gauge& g = MetricsRegistry::Global().GetGauge("test.gauge");
  g.Set(2.5);
  g.Set(7.25);
  EXPECT_DOUBLE_EQ(g.value(), 7.25);
}

TEST_F(ObsTest, HistogramBucketsAreLogScaled) {
  // Bucket 0 is [0, min); bucket i >= 1 is [min * 2^(i-1), min * 2^i).
  EXPECT_EQ(Histogram::BucketOf(0.0), 0);
  EXPECT_EQ(Histogram::BucketOf(Histogram::kMinValue / 2), 0);
  EXPECT_EQ(Histogram::BucketOf(Histogram::kMinValue), 1);
  EXPECT_EQ(Histogram::BucketOf(Histogram::kMinValue * 1.99), 1);
  EXPECT_EQ(Histogram::BucketOf(Histogram::kMinValue * 2), 2);
  EXPECT_EQ(Histogram::BucketOf(1e30), Histogram::kBuckets - 1);
  for (int i = 1; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketLowerBound(i)), i);
  }
}

TEST_F(ObsTest, HistogramObserveTracksWelfordStats) {
  REQUIRE_OBS_COMPILED_IN();
  Histogram& h = MetricsRegistry::Global().GetHistogram("test.histo");
  for (const double v : {1.0, 2.0, 3.0, 4.0}) h.Observe(v);
  const RunningStat stat = h.stat();
  EXPECT_EQ(stat.count(), 4);
  EXPECT_DOUBLE_EQ(stat.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stat.min(), 1.0);
  EXPECT_DOUBLE_EQ(stat.max(), 4.0);

  const auto buckets = h.buckets();
  int64_t total = 0;
  for (const int64_t b : buckets) total += b;
  EXPECT_EQ(total, 4);
  // Boundaries sit at kMinValue * 2^k = ..., 1.024, 2.048, 4.096, ... so
  // 3.0 and 4.0 share the [2.048, 4.096) bucket while 1.0 and 2.0 each get
  // their own.
  EXPECT_EQ(buckets[Histogram::BucketOf(1.0)], 1);
  EXPECT_EQ(buckets[Histogram::BucketOf(2.0)], 1);
  EXPECT_EQ(buckets[Histogram::BucketOf(4.0)], 2);
  EXPECT_EQ(Histogram::BucketOf(3.0), Histogram::BucketOf(4.0));
}

TEST_F(ObsTest, HistogramPercentilesInterpolateWithinBuckets) {
  REQUIRE_OBS_COMPILED_IN();
  Histogram& h = MetricsRegistry::Global().GetHistogram("test.pctl");
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);  // empty
  for (int v = 1; v <= 100; ++v) h.Observe(static_cast<double>(v));

  // Log2 buckets are coarse, so within-bucket interpolation is only
  // required to land in the right neighborhood, monotonically.
  const double p50 = h.Percentile(50);
  const double p95 = h.Percentile(95);
  const double p99 = h.Percentile(99);
  EXPECT_NEAR(p50, 50.0, 16.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Clamped to observed extremes, never beyond.
  EXPECT_LE(p99, 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);

  // The snapshot entry agrees with the live histogram.
  const auto snap = MetricsRegistry::Global().TakeSnapshot();
  for (const auto& entry : snap.histograms) {
    if (entry.name == "test.pctl") {
      EXPECT_DOUBLE_EQ(entry.Percentile(50), p50);
      EXPECT_DOUBLE_EQ(entry.Percentile(99), p99);
    }
  }
}

TEST_F(ObsTest, HistogramPercentileOverRawBuckets) {
  std::array<int64_t, Histogram::kBuckets> buckets{};
  EXPECT_DOUBLE_EQ(HistogramPercentile(buckets, 50), 0.0);
  // 10 observations in one bucket: percentiles sweep that bucket's range.
  const int b = Histogram::BucketOf(10.0);
  buckets[b] = 10;
  const double lo = Histogram::BucketLowerBound(b);
  const double hi = Histogram::BucketLowerBound(b + 1);
  EXPECT_GE(HistogramPercentile(buckets, 1), lo);
  EXPECT_LE(HistogramPercentile(buckets, 99), hi);
  EXPECT_LT(HistogramPercentile(buckets, 10),
            HistogramPercentile(buckets, 90));
}

TEST_F(ObsTest, SnapshotListsEverythingSorted) {
  REQUIRE_OBS_COMPILED_IN();
  MetricsRegistry::Global().GetCounter("test.b").Add(2);
  MetricsRegistry::Global().GetCounter("test.a").Add(1);
  MetricsRegistry::Global().GetGauge("test.g").Set(3.0);
  MetricsRegistry::Global().GetHistogram("test.h").Observe(1.0);

  const auto snap = MetricsRegistry::Global().TakeSnapshot();
  // The global registry accumulates names from other suites; find ours.
  int64_t a = -1, b = -1;
  bool sorted = true;
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0 && snap.counters[i - 1].name > snap.counters[i].name) {
      sorted = false;
    }
    if (snap.counters[i].name == "test.a") a = snap.counters[i].value;
    if (snap.counters[i].name == "test.b") b = snap.counters[i].value;
  }
  EXPECT_TRUE(sorted);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST_F(ObsTest, SpanWithoutSinkIsInactive) {
  TraceSpan span("no.sink");
  EXPECT_FALSE(span.active());
  span.SetAttr("x", static_cast<int64_t>(1));  // must not crash
}

TEST_F(ObsTest, SpanNestingAndTimingContainment) {
  REQUIRE_OBS_COMPILED_IN();
  CollectingSink sink;
  PdrObs::SetTraceSink(&sink);
  {
    TraceSpan root("root");
    root.SetAttr("depth", static_cast<int64_t>(0));
    {
      TraceSpan child1("child1");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      TraceSpan grandchild("grandchild");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    TraceSpan child2("child2");
  }
  PdrObs::SetTraceSink(nullptr);

  ASSERT_EQ(sink.size(), 1u);
  const auto traces = sink.TakeAll();
  const SpanNode& root = *traces[0];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.IntAttrOr("depth", -1), 0);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "child1");
  EXPECT_EQ(root.children[1]->name, "child2");
  ASSERT_EQ(root.children[0]->children.size(), 1u);
  EXPECT_EQ(root.children[0]->children[0]->name, "grandchild");
  EXPECT_EQ(root.TreeSize(), 4u);

  // Timing containment: every child interval lies within its parent, and
  // sibling durations sum to no more than the parent's.
  const SpanNode& child1 = *root.children[0];
  const SpanNode& grandchild = *child1.children[0];
  EXPECT_GE(child1.start_ns, root.start_ns);
  EXPECT_LE(child1.end_ns(), root.end_ns());
  EXPECT_GE(grandchild.start_ns, child1.start_ns);
  EXPECT_LE(grandchild.end_ns(), child1.end_ns());
  EXPECT_GE(root.duration_ns,
            root.children[0]->duration_ns + root.children[1]->duration_ns);
  EXPECT_GE(child1.duration_ns, grandchild.duration_ns);
  EXPECT_GT(child1.duration_ns, 0);
}

TEST_F(ObsTest, RootSpansAreDeliveredPerTree) {
  REQUIRE_OBS_COMPILED_IN();
  CollectingSink sink;
  PdrObs::SetTraceSink(&sink);
  for (int i = 0; i < 3; ++i) {
    TraceSpan span("root");
  }
  PdrObs::SetTraceSink(nullptr);
  EXPECT_EQ(sink.size(), 3u);
}

TEST_F(ObsTest, DisabledTracingProducesNoSpans) {
  CollectingSink sink;
  PdrObs::SetTraceSink(&sink);
  PdrObs::SetEnabled(false);
  {
    TraceSpan span("root");
    EXPECT_FALSE(span.active());
  }
  PdrObs::SetEnabled(true);
  EXPECT_EQ(sink.size(), 0u);
}

TEST_F(ObsTest, SpanJsonRoundTrip) {
  REQUIRE_OBS_COMPILED_IN();
  CollectingSink sink;
  PdrObs::SetTraceSink(&sink);
  {
    TraceSpan root("fr.query");
    root.SetAttr("io_reads", static_cast<int64_t>(42));
    root.SetAttr("rho", 0.125);
    root.SetAttr("quote\"backslash\\", static_cast<int64_t>(1));
    TraceSpan child("fr.filter");
    child.SetAttr("candidates", static_cast<int64_t>(7));
  }
  PdrObs::SetTraceSink(nullptr);
  ASSERT_EQ(sink.size(), 1u);
  const auto traces = sink.TakeAll();
  const SpanNode& original = *traces[0];

  const std::string line = TraceJsonLine(original);
  JsonParser parser(line);
  const JsonValue doc = parser.Parse();

  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.Find("type"), nullptr);
  EXPECT_EQ(doc.Find("type")->str(), "trace");
  const JsonValue* span = doc.Find("span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->Find("name")->str(), "fr.query");
  EXPECT_DOUBLE_EQ(span->Find("start_ns")->number(),
                   static_cast<double>(original.start_ns));
  EXPECT_NEAR(span->Find("dur_ms")->number(), original.duration_ms(), 1e-9);

  const JsonValue* attrs = span->Find("attrs");
  ASSERT_NE(attrs, nullptr);
  EXPECT_DOUBLE_EQ(attrs->Find("io_reads")->number(), 42.0);
  EXPECT_DOUBLE_EQ(attrs->Find("rho")->number(), 0.125);
  EXPECT_DOUBLE_EQ(attrs->Find("quote\"backslash\\")->number(), 1.0);

  const JsonValue* children = span->Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->array().size(), 1u);
  const JsonValue& child = children->array()[0];
  EXPECT_EQ(child.Find("name")->str(), "fr.filter");
  EXPECT_DOUBLE_EQ(child.Find("attrs")->Find("candidates")->number(), 7.0);
  EXPECT_EQ(child.Find("children"), nullptr);  // leaf spans omit the key
}

// Regression for the cross-thread child-attachment race: several workers
// adopting the same open parent and opening spans concurrently must yield
// ONE well-formed tree (attachment is mutex-guarded; before the guard this
// corrupted the children vector, visible under TSan). Also checks that
// per-thread ids survive into the tree and the JSONL export.
TEST_F(ObsTest, ConcurrentChildSpansAssembleIntoOneTree) {
  REQUIRE_OBS_COMPILED_IN();
  CollectingSink sink;
  PdrObs::SetTraceSink(&sink);
  constexpr int kWorkers = 4;
  constexpr int kSpansEach = 50;
  {
    TraceSpan root("query.root");
    ASSERT_TRUE(root.active());
    const TraceContext ctx = TraceContext::Current();
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&ctx, w] {
        TraceContextScope adopt(ctx);
        for (int i = 0; i < kSpansEach; ++i) {
          TraceSpan child("worker.span");
          child.SetAttr("worker", static_cast<int64_t>(w));
          // Same-thread nesting below an adopted parent must still chain.
          TraceSpan nested("worker.nested");
        }
      });
    }
    for (auto& t : workers) t.join();
  }
  PdrObs::SetTraceSink(nullptr);

  ASSERT_EQ(sink.size(), 1u);  // one tree, not kWorkers * kSpansEach trees
  const auto traces = sink.TakeAll();
  const SpanNode& root = *traces[0];
  ASSERT_EQ(root.children.size(),
            static_cast<size_t>(kWorkers) * kSpansEach);
  std::set<int64_t> tids;
  for (const auto& child : root.children) {
    EXPECT_EQ(child->name, "worker.span");
    ASSERT_EQ(child->children.size(), 1u);
    EXPECT_EQ(child->children[0]->name, "worker.nested");
    EXPECT_EQ(child->children[0]->thread_id, child->thread_id);
    tids.insert(child->thread_id);
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kWorkers));
  EXPECT_EQ(tids.count(root.thread_id), 0u);

  const std::string line = TraceJsonLine(root);
  JsonParser parser(line);
  const JsonValue doc = parser.Parse();
  const JsonValue* span = doc.Find("span");
  ASSERT_NE(span, nullptr);
  ASSERT_NE(span->Find("tid"), nullptr);
  EXPECT_DOUBLE_EQ(span->Find("tid")->number(),
                   static_cast<double>(root.thread_id));
}

TEST_F(ObsTest, MetricsJsonlRoundTrip) {
  REQUIRE_OBS_COMPILED_IN();
  MetricsRegistry::Global().GetCounter("test.jsonl.counter").Add(17);
  MetricsRegistry::Global().GetGauge("test.jsonl.gauge").Set(2.5);
  Histogram& h = MetricsRegistry::Global().GetHistogram("test.jsonl.histo");
  h.Observe(1.0);
  h.Observe(4.0);

  const std::string path =
      ::testing::TempDir() + "/obs_metrics_roundtrip.jsonl";
  std::remove(path.c_str());
  {
    JsonlWriter writer(path);
    ASSERT_TRUE(writer.ok());
    WriteMetricsJsonl(&writer, MetricsRegistry::Global().TakeSnapshot());
  }

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  bool saw_counter = false, saw_gauge = false, saw_histo = false;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    JsonParser parser(std::string_view(buf, std::strlen(buf)));
    const JsonValue doc = parser.Parse();
    ASSERT_TRUE(doc.is_object());
    const std::string type = doc.Find("type")->str();
    const std::string name = doc.Find("name")->str();
    if (name == "test.jsonl.counter") {
      saw_counter = true;
      EXPECT_EQ(type, "counter");
      EXPECT_DOUBLE_EQ(doc.Find("value")->number(), 17.0);
    } else if (name == "test.jsonl.gauge") {
      saw_gauge = true;
      EXPECT_EQ(type, "gauge");
      EXPECT_DOUBLE_EQ(doc.Find("value")->number(), 2.5);
    } else if (name == "test.jsonl.histo") {
      saw_histo = true;
      EXPECT_EQ(type, "histogram");
      EXPECT_DOUBLE_EQ(doc.Find("count")->number(), 2.0);
      EXPECT_DOUBLE_EQ(doc.Find("mean")->number(), 2.5);
      int64_t bucket_total = 0;
      for (const JsonValue& b : doc.Find("buckets")->array()) {
        bucket_total += static_cast<int64_t>(b.Find("count")->number());
      }
      EXPECT_EQ(bucket_total, 2);
    }
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histo);
}

TEST_F(ObsTest, MultiThreadedCounterHammer) {
  REQUIRE_OBS_COMPILED_IN();
  Counter& c = MetricsRegistry::Global().GetCounter("test.hammer");
  Histogram& h = MetricsRegistry::Global().GetHistogram("test.hammer_ms");
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kIters; ++i) {
        c.Increment();
        if (i % 100 == 0) h.Observe(static_cast<double>(i % 7) + 0.5);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<int64_t>(kThreads) * kIters);
  EXPECT_EQ(h.stat().count(), static_cast<int64_t>(kThreads) * (kIters / 100));
}

TEST_F(ObsTest, ConcurrentRegistrationIsSafe) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, t] {
      for (int i = 0; i < 200; ++i) {
        Counter& c = MetricsRegistry::Global().GetCounter(
            "test.concurrent." + std::to_string(i % 10));
        c.Increment();
        if (i == 0) seen[t] = &c;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

}  // namespace
}  // namespace pdr
