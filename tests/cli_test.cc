// End-to-end smoke test for the pdr_tool CLI, run against the real
// binary (path injected by CMake as PDR_TOOL_BIN). Covers the strict
// argument contract — unknown commands, unknown flags, stray
// positionals, and missing required flags all print usage and exit 2 —
// plus a gen/info/query round trip and the deadline-bounded query path.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pdr {
namespace {

#ifndef PDR_TOOL_BIN
#error "PDR_TOOL_BIN must be defined to the pdr_tool binary path"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout and stderr interleaved
};

RunResult RunTool(const std::string& args) {
  const std::string cmd = std::string(PDR_TOOL_BIN) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    result.output.append(buf, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

class CliTest : public ::testing::Test {
 protected:
  // One tiny dataset shared by every test in the suite.
  static void SetUpTestSuite() {
    char tmpl[] = "/tmp/pdr_cli_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    dir_ = new std::string(dir);
    dataset_ = new std::string(*dir_ + "/ds.bin");
    const RunResult gen =
        RunTool("gen --out " + *dataset_ +
            " --objects 80 --extent 200 --duration 8 --interval 4 --seed 5");
    ASSERT_EQ(gen.exit_code, 0) << gen.output;
  }

  static void TearDownTestSuite() {
    std::system(("rm -rf '" + *dir_ + "'").c_str());
    delete dataset_;
    delete dir_;
  }

  static const std::string& dataset() { return *dataset_; }

 private:
  static std::string* dir_;
  static std::string* dataset_;
};

std::string* CliTest::dir_ = nullptr;
std::string* CliTest::dataset_ = nullptr;

TEST_F(CliTest, NoArgumentsPrintsUsageAndExits2) {
  const RunResult r = RunTool("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
}

TEST_F(CliTest, UnknownCommandIsRejected) {
  const RunResult r = RunTool("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command 'frobnicate'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
}

TEST_F(CliTest, UnknownFlagIsRejectedPerCommand) {
  // --qt is valid for query but not for monitor; each command owns its
  // own flag set.
  const RunResult r = RunTool("monitor --in " + dataset() + " --qt 3");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown flag --qt for 'monitor'"),
            std::string::npos)
      << r.output;
}

TEST_F(CliTest, StrayPositionalIsRejected) {
  const RunResult r = RunTool("info " + dataset());
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unexpected argument"), std::string::npos)
      << r.output;
}

TEST_F(CliTest, MissingRequiredFlagIsRejected) {
  EXPECT_EQ(RunTool("query --varrho 2").exit_code, 2);
  EXPECT_EQ(RunTool("gen --objects 10").exit_code, 2);
  EXPECT_EQ(RunTool("save --in " + dataset()).exit_code, 2);  // needs --wal-dir
}

TEST_F(CliTest, MissingDatasetFileFailsCleanly) {
  const RunResult r = RunTool("info --in /nonexistent/ds.bin");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error"), std::string::npos) << r.output;
}

TEST_F(CliTest, GenInfoQueryRoundTrip) {
  const RunResult info = RunTool("info --in " + dataset());
  EXPECT_EQ(info.exit_code, 0) << info.output;
  EXPECT_NE(info.output.find("objects   : 80"), std::string::npos)
      << info.output;

  const RunResult query =
      RunTool("query --in " + dataset() + " --varrho 2 --l 25 --engine fr");
  EXPECT_EQ(query.exit_code, 0) << query.output;
  EXPECT_NE(query.output.find("FR (tpr):"), std::string::npos) << query.output;
}

TEST_F(CliTest, DeadlineBoundedQueryReportsTierAndBudget) {
  const RunResult r =
      RunTool("query --in " + dataset() + " --varrho 2 --l 25 --deadline-ms 5000");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("tier="), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("ms budget"), std::string::npos) << r.output;
}

TEST_F(CliTest, PreExpiredDeadlineDegradesToHistogram) {
  const RunResult r = RunTool("query --in " + dataset() +
                          " --varrho 2 --l 25 --deadline-ms 0.0001");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("tier=histogram (timed out)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("certainly dense"), std::string::npos) << r.output;
}

TEST_F(CliTest, DeadlineWithoutDegradeFailsTheQuery) {
  const RunResult r = RunTool("query --in " + dataset() +
                          " --varrho 2 --l 25 --deadline-ms 0.0001 "
                          "--degrade 0");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error"), std::string::npos) << r.output;
}

TEST_F(CliTest, MonitorRunsWithDeadlineAndAdmission) {
  const RunResult r = RunTool("monitor --in " + dataset() +
                          " --varrho 2 --l 25 --lookahead 2 --every 4 "
                          "--deadline-ms 5000 --max-inflight 2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("dense"), std::string::npos) << r.output;
}

TEST_F(CliTest, ExplainNamesTierStagesAndCounts) {
  const RunResult text =
      RunTool("explain --in " + dataset() + " --varrho 2 --l 25");
  EXPECT_EQ(text.exit_code, 0) << text.output;
  EXPECT_NE(text.output.find("tier:     exact"), std::string::npos)
      << text.output;
  EXPECT_NE(text.output.find("filter:"), std::string::npos) << text.output;
  EXPECT_NE(text.output.find("stages:"), std::string::npos) << text.output;

  const RunResult json = RunTool("explain --in " + dataset() +
                             " --varrho 2 --l 25 --format json");
  EXPECT_EQ(json.exit_code, 0) << json.output;
  EXPECT_NE(json.output.find("\"tier\":\"exact\""), std::string::npos)
      << json.output;
  EXPECT_NE(json.output.find("\"candidate_cells\":"), std::string::npos)
      << json.output;
}

TEST_F(CliTest, ExplainDeadlineMissNamesDowngradeReasonAndWritesDump) {
  char tmpl[] = "/tmp/pdr_cli_fr_XXXXXX";
  const char* flight_dir = mkdtemp(tmpl);
  ASSERT_NE(flight_dir, nullptr);
  const RunResult r = RunTool("explain --in " + dataset() +
                          " --varrho 2 --l 25 --deadline-ms 0.0001 "
                          "--flight-dir " + flight_dir);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("reason:   deadline"), std::string::npos)
      << r.output;
  // The miss left a Perfetto-loadable dump pair behind.
  const std::string listing = [&] {
    std::string files;
    const std::string cmd = std::string("ls ") + flight_dir;
    FILE* pipe = popen(cmd.c_str(), "r");
    char buf[4096];
    size_t n = 0;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) files.append(buf, n);
    pclose(pipe);
    return files;
  }();
  EXPECT_NE(listing.find("deadline_miss"), std::string::npos) << listing;
  EXPECT_NE(listing.find(".trace.json"), std::string::npos) << listing;
  std::system((std::string("rm -rf '") + flight_dir + "'").c_str());
}

TEST_F(CliTest, StatsPrometheusFormatIsScrapable) {
  const RunResult r = RunTool("stats --in " + dataset() +
                          " --varrho 2 --l 25 --format prometheus");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("# TYPE pdr_fr_queries counter"), std::string::npos)
      << r.output;
  // Exposition names never contain dots.
  EXPECT_EQ(r.output.find("pdr.fr"), std::string::npos) << r.output;
}

TEST_F(CliTest, RecordReplayRoundTripVerifiesBitIdentical) {
  char tmpl[] = "/tmp/pdr_cli_wlog_XXXXXX";
  const char* wdir = mkdtemp(tmpl);
  ASSERT_NE(wdir, nullptr);
  const std::string log = std::string(wdir) + "/run.wlog";

  const RunResult rec = RunTool("record --in " + dataset() + " --log " + log +
                            " --varrho 2 --l 25 --lookahead 2 --every 2");
  EXPECT_EQ(rec.exit_code, 0) << rec.output;
  EXPECT_NE(rec.output.find("recorded " + log), std::string::npos)
      << rec.output;

  // Verify at the recorded width and at an explicit parallel override —
  // the capture's whole point is that both are bit-identical.
  for (const std::string threads : {"", " --threads 4"}) {
    const RunResult verify =
        RunTool("replay --log " + log + " --verify" + threads);
    EXPECT_EQ(verify.exit_code, 0) << verify.output;
    EXPECT_NE(verify.output.find("ticks bit-identical"), std::string::npos)
        << verify.output;
  }

  const RunResult bench =
      RunTool("replay --log " + log + " --bench --jsonl -");
  EXPECT_EQ(bench.exit_code, 0) << bench.output;
  EXPECT_NE(bench.output.find("\"series\":\"replay_bench\""),
            std::string::npos)
      << bench.output;
  EXPECT_NE(bench.output.find("\"p99_ms\":"), std::string::npos)
      << bench.output;

  std::system((std::string("rm -rf '") + wdir + "'").c_str());
}

TEST_F(CliTest, RecordReplayKeepTheStrictFlagContract) {
  // Unknown flags exit 2 with the per-command message, like every other
  // command.
  const RunResult rec = RunTool("record --in " + dataset() + " --frobnicate");
  EXPECT_EQ(rec.exit_code, 2);
  EXPECT_NE(rec.output.find("unknown flag --frobnicate for 'record'"),
            std::string::npos)
      << rec.output;
  const RunResult rep = RunTool("replay --log /tmp/x.wlog --qt 3");
  EXPECT_EQ(rep.exit_code, 2);
  EXPECT_NE(rep.output.find("unknown flag --qt for 'replay'"),
            std::string::npos)
      << rep.output;

  // record needs both inputs; replay needs exactly one source.
  EXPECT_EQ(RunTool("record --in " + dataset()).exit_code, 2);
  EXPECT_EQ(RunTool("replay").exit_code, 2);
  const RunResult both =
      RunTool("replay --log /tmp/a.wlog --bundle /tmp/b");
  EXPECT_EQ(both.exit_code, 2);
  EXPECT_NE(both.output.find("exactly one of --log/--bundle"),
            std::string::npos)
      << both.output;

  // A missing log is a runtime error (exit 1), not a usage error.
  const RunResult missing = RunTool("replay --log /nonexistent/run.wlog");
  EXPECT_EQ(missing.exit_code, 1);
  EXPECT_NE(missing.output.find("error"), std::string::npos) << missing.output;
}

TEST_F(CliTest, MonitorRejectsDeadlineWithAudit) {
  const RunResult r = RunTool("monitor --in " + dataset() +
                          " --audit-rate 0.5 --deadline-ms 100");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("FR-primary"), std::string::npos) << r.output;
}

TEST_F(CliTest, ConcurrentMonitorReportsConsistentDigests) {
  const RunResult r = RunTool("monitor --in " + dataset() +
                          " --varrho 2 --l 25 --lookahead 2 --concurrent 2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("epochs committed"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("cross-reader per-epoch digests consistent"),
            std::string::npos)
      << r.output;
}

TEST_F(CliTest, ConcurrentRecordReplaysBitIdentical) {
  char tmpl[] = "/tmp/pdr_cli_mvcc_XXXXXX";
  const char* wdir = mkdtemp(tmpl);
  ASSERT_NE(wdir, nullptr);
  const std::string log = std::string(wdir) + "/mvcc.wlog";

  const RunResult rec = RunTool("record --in " + dataset() + " --log " + log +
                            " --varrho 2 --l 25 --lookahead 2 --every 2"
                            " --concurrent 2");
  EXPECT_EQ(rec.exit_code, 0) << rec.output;
  EXPECT_NE(rec.output.find("(concurrent)"), std::string::npos) << rec.output;

  for (const std::string threads : {"", " --threads 4"}) {
    const RunResult verify =
        RunTool("replay --log " + log + " --verify --digests" + threads);
    EXPECT_EQ(verify.exit_code, 0) << verify.output;
    EXPECT_NE(verify.output.find("ticks bit-identical"), std::string::npos)
        << verify.output;
    EXPECT_NE(verify.output.find("digest t="), std::string::npos)
        << verify.output;
  }
  std::system((std::string("rm -rf '") + wdir + "'").c_str());
}

}  // namespace
}  // namespace pdr
