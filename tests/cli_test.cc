// End-to-end smoke test for the pdr_tool CLI, run against the real
// binary (path injected by CMake as PDR_TOOL_BIN). Covers the strict
// argument contract — unknown commands, unknown flags, stray
// positionals, and missing required flags all print usage and exit 2 —
// plus a gen/info/query round trip and the deadline-bounded query path.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "pdr/storage/disk_pager.h"
#include "pdr/storage/fault_injector.h"
#include "pdr/storage/page_format.h"

namespace pdr {
namespace {

#ifndef PDR_TOOL_BIN
#error "PDR_TOOL_BIN must be defined to the pdr_tool binary path"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout and stderr interleaved
};

RunResult RunTool(const std::string& args) {
  const std::string cmd = std::string(PDR_TOOL_BIN) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    result.output.append(buf, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

class CliTest : public ::testing::Test {
 protected:
  // One tiny dataset shared by every test in the suite.
  static void SetUpTestSuite() {
    char tmpl[] = "/tmp/pdr_cli_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    dir_ = new std::string(dir);
    dataset_ = new std::string(*dir_ + "/ds.bin");
    const RunResult gen =
        RunTool("gen --out " + *dataset_ +
            " --objects 80 --extent 200 --duration 8 --interval 4 --seed 5");
    ASSERT_EQ(gen.exit_code, 0) << gen.output;
  }

  static void TearDownTestSuite() {
    std::system(("rm -rf '" + *dir_ + "'").c_str());
    delete dataset_;
    delete dir_;
  }

  static const std::string& dataset() { return *dataset_; }

 private:
  static std::string* dir_;
  static std::string* dataset_;
};

std::string* CliTest::dir_ = nullptr;
std::string* CliTest::dataset_ = nullptr;

TEST_F(CliTest, NoArgumentsPrintsUsageAndExits2) {
  const RunResult r = RunTool("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
}

TEST_F(CliTest, UnknownCommandIsRejected) {
  const RunResult r = RunTool("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command 'frobnicate'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
}

TEST_F(CliTest, UnknownFlagIsRejectedPerCommand) {
  // --qt is valid for query but not for monitor; each command owns its
  // own flag set.
  const RunResult r = RunTool("monitor --in " + dataset() + " --qt 3");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown flag --qt for 'monitor'"),
            std::string::npos)
      << r.output;
}

TEST_F(CliTest, StrayPositionalIsRejected) {
  const RunResult r = RunTool("info " + dataset());
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unexpected argument"), std::string::npos)
      << r.output;
}

TEST_F(CliTest, MissingRequiredFlagIsRejected) {
  EXPECT_EQ(RunTool("query --varrho 2").exit_code, 2);
  EXPECT_EQ(RunTool("gen --objects 10").exit_code, 2);
  EXPECT_EQ(RunTool("save --in " + dataset()).exit_code, 2);  // needs --wal-dir
}

TEST_F(CliTest, MissingDatasetFileFailsCleanly) {
  const RunResult r = RunTool("info --in /nonexistent/ds.bin");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error"), std::string::npos) << r.output;
}

TEST_F(CliTest, GenInfoQueryRoundTrip) {
  const RunResult info = RunTool("info --in " + dataset());
  EXPECT_EQ(info.exit_code, 0) << info.output;
  EXPECT_NE(info.output.find("objects   : 80"), std::string::npos)
      << info.output;

  const RunResult query =
      RunTool("query --in " + dataset() + " --varrho 2 --l 25 --engine fr");
  EXPECT_EQ(query.exit_code, 0) << query.output;
  EXPECT_NE(query.output.find("FR (tpr):"), std::string::npos) << query.output;
}

TEST_F(CliTest, DeadlineBoundedQueryReportsTierAndBudget) {
  const RunResult r =
      RunTool("query --in " + dataset() + " --varrho 2 --l 25 --deadline-ms 5000");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("tier="), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("ms budget"), std::string::npos) << r.output;
}

TEST_F(CliTest, PreExpiredDeadlineDegradesToHistogram) {
  const RunResult r = RunTool("query --in " + dataset() +
                          " --varrho 2 --l 25 --deadline-ms 0.0001");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("tier=histogram (timed out)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("certainly dense"), std::string::npos) << r.output;
}

TEST_F(CliTest, DeadlineWithoutDegradeFailsTheQuery) {
  const RunResult r = RunTool("query --in " + dataset() +
                          " --varrho 2 --l 25 --deadline-ms 0.0001 "
                          "--degrade 0");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error"), std::string::npos) << r.output;
}

TEST_F(CliTest, MonitorRunsWithDeadlineAndAdmission) {
  const RunResult r = RunTool("monitor --in " + dataset() +
                          " --varrho 2 --l 25 --lookahead 2 --every 4 "
                          "--deadline-ms 5000 --max-inflight 2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("dense"), std::string::npos) << r.output;
}

TEST_F(CliTest, ExplainNamesTierStagesAndCounts) {
  const RunResult text =
      RunTool("explain --in " + dataset() + " --varrho 2 --l 25");
  EXPECT_EQ(text.exit_code, 0) << text.output;
  EXPECT_NE(text.output.find("tier:     exact"), std::string::npos)
      << text.output;
  EXPECT_NE(text.output.find("filter:"), std::string::npos) << text.output;
  EXPECT_NE(text.output.find("stages:"), std::string::npos) << text.output;

  const RunResult json = RunTool("explain --in " + dataset() +
                             " --varrho 2 --l 25 --format json");
  EXPECT_EQ(json.exit_code, 0) << json.output;
  EXPECT_NE(json.output.find("\"tier\":\"exact\""), std::string::npos)
      << json.output;
  EXPECT_NE(json.output.find("\"candidate_cells\":"), std::string::npos)
      << json.output;
}

TEST_F(CliTest, ExplainDeadlineMissNamesDowngradeReasonAndWritesDump) {
  char tmpl[] = "/tmp/pdr_cli_fr_XXXXXX";
  const char* flight_dir = mkdtemp(tmpl);
  ASSERT_NE(flight_dir, nullptr);
  const RunResult r = RunTool("explain --in " + dataset() +
                          " --varrho 2 --l 25 --deadline-ms 0.0001 "
                          "--flight-dir " + flight_dir);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("reason:   deadline"), std::string::npos)
      << r.output;
  // The miss left a Perfetto-loadable dump pair behind.
  const std::string listing = [&] {
    std::string files;
    const std::string cmd = std::string("ls ") + flight_dir;
    FILE* pipe = popen(cmd.c_str(), "r");
    char buf[4096];
    size_t n = 0;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) files.append(buf, n);
    pclose(pipe);
    return files;
  }();
  EXPECT_NE(listing.find("deadline_miss"), std::string::npos) << listing;
  EXPECT_NE(listing.find(".trace.json"), std::string::npos) << listing;
  std::system((std::string("rm -rf '") + flight_dir + "'").c_str());
}

TEST_F(CliTest, StatsPrometheusFormatIsScrapable) {
  const RunResult r = RunTool("stats --in " + dataset() +
                          " --varrho 2 --l 25 --format prometheus");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("# TYPE pdr_fr_queries counter"), std::string::npos)
      << r.output;
  // Exposition names never contain dots.
  EXPECT_EQ(r.output.find("pdr.fr"), std::string::npos) << r.output;
}

TEST_F(CliTest, RecordReplayRoundTripVerifiesBitIdentical) {
  char tmpl[] = "/tmp/pdr_cli_wlog_XXXXXX";
  const char* wdir = mkdtemp(tmpl);
  ASSERT_NE(wdir, nullptr);
  const std::string log = std::string(wdir) + "/run.wlog";

  const RunResult rec = RunTool("record --in " + dataset() + " --log " + log +
                            " --varrho 2 --l 25 --lookahead 2 --every 2");
  EXPECT_EQ(rec.exit_code, 0) << rec.output;
  EXPECT_NE(rec.output.find("recorded " + log), std::string::npos)
      << rec.output;

  // Verify at the recorded width and at an explicit parallel override —
  // the capture's whole point is that both are bit-identical.
  for (const std::string threads : {"", " --threads 4"}) {
    const RunResult verify =
        RunTool("replay --log " + log + " --verify" + threads);
    EXPECT_EQ(verify.exit_code, 0) << verify.output;
    EXPECT_NE(verify.output.find("ticks bit-identical"), std::string::npos)
        << verify.output;
  }

  const RunResult bench =
      RunTool("replay --log " + log + " --bench --jsonl -");
  EXPECT_EQ(bench.exit_code, 0) << bench.output;
  EXPECT_NE(bench.output.find("\"series\":\"replay_bench\""),
            std::string::npos)
      << bench.output;
  EXPECT_NE(bench.output.find("\"p99_ms\":"), std::string::npos)
      << bench.output;

  std::system((std::string("rm -rf '") + wdir + "'").c_str());
}

TEST_F(CliTest, RecordReplayKeepTheStrictFlagContract) {
  // Unknown flags exit 2 with the per-command message, like every other
  // command.
  const RunResult rec = RunTool("record --in " + dataset() + " --frobnicate");
  EXPECT_EQ(rec.exit_code, 2);
  EXPECT_NE(rec.output.find("unknown flag --frobnicate for 'record'"),
            std::string::npos)
      << rec.output;
  const RunResult rep = RunTool("replay --log /tmp/x.wlog --qt 3");
  EXPECT_EQ(rep.exit_code, 2);
  EXPECT_NE(rep.output.find("unknown flag --qt for 'replay'"),
            std::string::npos)
      << rep.output;

  // record needs both inputs; replay needs exactly one source.
  EXPECT_EQ(RunTool("record --in " + dataset()).exit_code, 2);
  EXPECT_EQ(RunTool("replay").exit_code, 2);
  const RunResult both =
      RunTool("replay --log /tmp/a.wlog --bundle /tmp/b");
  EXPECT_EQ(both.exit_code, 2);
  EXPECT_NE(both.output.find("exactly one of --log/--bundle"),
            std::string::npos)
      << both.output;

  // A missing log is a runtime error (exit 1), not a usage error.
  const RunResult missing = RunTool("replay --log /nonexistent/run.wlog");
  EXPECT_EQ(missing.exit_code, 1);
  EXPECT_NE(missing.output.find("error"), std::string::npos) << missing.output;
}

TEST_F(CliTest, MonitorRejectsDeadlineWithAudit) {
  const RunResult r = RunTool("monitor --in " + dataset() +
                          " --audit-rate 0.5 --deadline-ms 100");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("FR-primary"), std::string::npos) << r.output;
}

TEST_F(CliTest, ConcurrentMonitorReportsConsistentDigests) {
  const RunResult r = RunTool("monitor --in " + dataset() +
                          " --varrho 2 --l 25 --lookahead 2 --concurrent 2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("epochs committed"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("cross-reader per-epoch digests consistent"),
            std::string::npos)
      << r.output;
}

TEST_F(CliTest, FsckCleanStoreExitsZero) {
  char tmpl[] = "/tmp/pdr_cli_fsck_XXXXXX";
  const char* wdir = mkdtemp(tmpl);
  ASSERT_NE(wdir, nullptr);
  const std::string store = std::string(wdir) + "/store";

  const RunResult save =
      RunTool("save --in " + dataset() + " --wal-dir " + store);
  ASSERT_EQ(save.exit_code, 0) << save.output;

  const RunResult fsck = RunTool("fsck --wal-dir " + store);
  EXPECT_EQ(fsck.exit_code, 0) << fsck.output;
  EXPECT_NE(fsck.output.find("checkpoint ok"), std::string::npos)
      << fsck.output;
  EXPECT_NE(fsck.output.find("0 unrepairable"), std::string::npos)
      << fsck.output;
  std::system((std::string("rm -rf '") + wdir + "'").c_str());
}

TEST_F(CliTest, FsckUnrepairableDamageExitsThreeAndReportsJson) {
  char tmpl[] = "/tmp/pdr_cli_fsck_XXXXXX";
  const char* wdir = mkdtemp(tmpl);
  ASSERT_NE(wdir, nullptr);
  const std::string store = std::string(wdir) + "/store";
  ASSERT_EQ(RunTool("save --in " + dataset() + " --wal-dir " + store)
                .exit_code,
            0);
  // Cold bit-rot on a cleanly saved store: the WAL is empty, so nothing
  // can reconstruct the page.
  ASSERT_TRUE(FlipBitInFile(store + "/data.pdr", SlotOffset(0) + 99, 3));

  const RunResult fsck = RunTool("fsck --wal-dir " + store);
  EXPECT_EQ(fsck.exit_code, 3) << fsck.output;
  EXPECT_NE(fsck.output.find("UNREPAIRABLE"), std::string::npos)
      << fsck.output;

  const RunResult json = RunTool("fsck --wal-dir " + store + " --json");
  EXPECT_EQ(json.exit_code, 3) << json.output;
  EXPECT_NE(json.output.find("\"exit_code\":3"), std::string::npos)
      << json.output;
  EXPECT_NE(json.output.find("\"pages_unrepairable\":1"), std::string::npos)
      << json.output;
  EXPECT_NE(json.output.find("\"redo_covered\":false"), std::string::npos)
      << json.output;

  // The damaged store also refuses to recover through the normal path.
  const RunResult recover =
      RunTool("recover --in " + dataset() + " --wal-dir " + store);
  EXPECT_EQ(recover.exit_code, 1) << recover.output;
  std::system((std::string("rm -rf '") + wdir + "'").c_str());
}

TEST_F(CliTest, FsckRepairHealsRedoCoveredDamageThenRecoverSucceeds) {
  char tmpl[] = "/tmp/pdr_cli_fsck_XXXXXX";
  const char* wdir = mkdtemp(tmpl);
  ASSERT_NE(wdir, nullptr);
  const std::string store = std::string(wdir) + "/store";
  ASSERT_EQ(::mkdir(store.c_str(), 0775), 0);

  // A store crashed mid-converge: checkpoint 2's batch is committed in
  // the WAL but no slot write happened, then cold damage lands on a
  // covered slot. (Built through the library — the CLI has no crash
  // injection — then verified and repaired through the real binary.)
  const auto fill = [](DiskPager* pager, int phase) {
    for (PageId id = 0; id < 4; ++id) {
      if (phase == 0) EXPECT_EQ(pager->Allocate(), id);
      Page p;
      for (size_t b = 0; b < kPageSize; ++b) {
        p.bytes[b] =
            static_cast<std::byte>((phase * 211 + id * 131 + b * 7) & 0xFF);
      }
      pager->WritePage(id, p);
    }
  };
  int64_t crash_at = -1;
  {
    FaultInjector counter;
    char rt[] = "/tmp/pdr_cli_fsck_XXXXXX";
    const char* rdir = mkdtemp(rt);
    ASSERT_NE(rdir, nullptr);
    DiskPager pager(rdir, &counter);
    fill(&pager, 0);
    pager.Checkpoint("a");
    fill(&pager, 1);  // re-dirty the same pages
    const size_t before = counter.op_log().size();
    pager.Checkpoint("b");
    bool synced = false;
    for (size_t i = before; i < counter.op_log().size(); ++i) {
      if (counter.op_log()[i] == "wal.sync") synced = true;
      if (synced && counter.op_log()[i] == "data.write") {
        crash_at = static_cast<int64_t>(i);
        break;
      }
    }
    std::system((std::string("rm -rf '") + rdir + "'").c_str());
  }
  ASSERT_GE(crash_at, 0);
  {
    FaultInjector injector;
    injector.Arm(crash_at, CrashMode::kClean);
    DiskPager pager(store, &injector);
    fill(&pager, 0);
    pager.Checkpoint("a");
    fill(&pager, 1);
    EXPECT_THROW(pager.Checkpoint("b"), CrashError);
  }
  ASSERT_TRUE(FlipBitInFile(store + "/data.pdr", SlotOffset(2) + 77, 1));

  // Report-only: the damage is visible but covered by the WAL.
  const RunResult dry = RunTool("fsck --wal-dir " + store);
  EXPECT_EQ(dry.exit_code, 0) << dry.output;
  EXPECT_NE(dry.output.find("repairable from WAL"), std::string::npos)
      << dry.output;

  // Repair heals the slot in place; a second pass finds nothing damaged.
  const RunResult repair = RunTool("fsck --wal-dir " + store + " --repair");
  EXPECT_EQ(repair.exit_code, 0) << repair.output;
  EXPECT_NE(repair.output.find("(repaired)"), std::string::npos)
      << repair.output;
  const RunResult clean = RunTool("fsck --wal-dir " + store + " --json");
  EXPECT_EQ(clean.exit_code, 0) << clean.output;
  EXPECT_NE(clean.output.find("\"damaged\":[]"), std::string::npos)
      << clean.output;

  // And the store opens: recovery replays the committed batch on top of
  // the healed slots and surfaces checkpoint-b state.
  DiskPager recovered(store);
  EXPECT_TRUE(recovered.recovered());
  EXPECT_EQ(recovered.recovered_meta(), "b");
  for (PageId id = 0; id < 4; ++id) {
    Page got;
    recovered.ReadPage(id, &got);
    EXPECT_EQ(got.bytes[0],
              static_cast<std::byte>((211 + id * 131) & 0xFF))
        << "page " << id;
  }
  std::system((std::string("rm -rf '") + wdir + "'").c_str());
}

TEST_F(CliTest, MonitorScrubBudgetRequiresWalDir) {
  const RunResult r =
      RunTool("monitor --in " + dataset() + " --scrub-budget 4");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--scrub-budget needs --wal-dir"),
            std::string::npos)
      << r.output;
}

TEST_F(CliTest, DurableMonitorScrubsAndCheckpoints) {
  char tmpl[] = "/tmp/pdr_cli_fsck_XXXXXX";
  const char* wdir = mkdtemp(tmpl);
  ASSERT_NE(wdir, nullptr);
  const std::string store = std::string(wdir) + "/store";
  const RunResult r = RunTool("monitor --in " + dataset() +
                              " --varrho 2 --l 25 --lookahead 2 --wal-dir " +
                              store + " --checkpoint-every 2 --scrub-budget 8");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("durable :"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("scrub   :"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0 unrepairable"), std::string::npos) << r.output;

  const RunResult fsck = RunTool("fsck --wal-dir " + store);
  EXPECT_EQ(fsck.exit_code, 0) << fsck.output;
  std::system((std::string("rm -rf '") + wdir + "'").c_str());
}

TEST_F(CliTest, ConcurrentRecordReplaysBitIdentical) {
  char tmpl[] = "/tmp/pdr_cli_mvcc_XXXXXX";
  const char* wdir = mkdtemp(tmpl);
  ASSERT_NE(wdir, nullptr);
  const std::string log = std::string(wdir) + "/mvcc.wlog";

  const RunResult rec = RunTool("record --in " + dataset() + " --log " + log +
                            " --varrho 2 --l 25 --lookahead 2 --every 2"
                            " --concurrent 2");
  EXPECT_EQ(rec.exit_code, 0) << rec.output;
  EXPECT_NE(rec.output.find("(concurrent)"), std::string::npos) << rec.output;

  for (const std::string threads : {"", " --threads 4"}) {
    const RunResult verify =
        RunTool("replay --log " + log + " --verify --digests" + threads);
    EXPECT_EQ(verify.exit_code, 0) << verify.output;
    EXPECT_NE(verify.output.find("ticks bit-identical"), std::string::npos)
        << verify.output;
    EXPECT_NE(verify.output.find("digest t="), std::string::npos)
        << verify.output;
  }
  std::system((std::string("rm -rf '") + wdir + "'").c_str());
}

}  // namespace
}  // namespace pdr
