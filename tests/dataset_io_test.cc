#include "pdr/mobility/dataset_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

namespace pdr {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.WithExtent(150.0);
  config.num_objects = 200;
  config.max_update_interval = 12;
  config.network.grid_nodes = 6;
  config.seed = 321;
  return config;
}

void ExpectDatasetsEqual(const Dataset& a, const Dataset& b) {
  EXPECT_EQ(a.config.extent, b.config.extent);
  EXPECT_EQ(a.config.num_objects, b.config.num_objects);
  EXPECT_EQ(a.config.max_update_interval, b.config.max_update_interval);
  EXPECT_EQ(a.config.seed, b.config.seed);
  EXPECT_EQ(a.config.network.grid_nodes, b.config.network.grid_nodes);
  ASSERT_EQ(a.ticks.size(), b.ticks.size());
  for (size_t t = 0; t < a.ticks.size(); ++t) {
    ASSERT_EQ(a.ticks[t].size(), b.ticks[t].size()) << "tick " << t;
    for (size_t i = 0; i < a.ticks[t].size(); ++i) {
      const UpdateEvent& ea = a.ticks[t][i];
      const UpdateEvent& eb = b.ticks[t][i];
      EXPECT_EQ(ea.tick, eb.tick);
      EXPECT_EQ(ea.id, eb.id);
      EXPECT_EQ(ea.old_state, eb.old_state);
      EXPECT_EQ(ea.new_state, eb.new_state);
    }
  }
}

TEST(DatasetIoTest, StreamRoundTrip) {
  const Dataset original = GenerateDataset(SmallConfig(), 15);
  std::stringstream buffer;
  WriteDataset(original, buffer);
  const Dataset loaded = ReadDataset(buffer);
  ExpectDatasetsEqual(original, loaded);
}

TEST(DatasetIoTest, FileRoundTrip) {
  const Dataset original = GenerateDataset(SmallConfig(), 10);
  const std::string path = ::testing::TempDir() + "/pdr_dataset_test.pdrd";
  SaveDataset(original, path);
  const Dataset loaded = LoadDataset(path);
  ExpectDatasetsEqual(original, loaded);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, EmptyDataset) {
  Dataset empty;
  empty.config = SmallConfig();
  std::stringstream buffer;
  WriteDataset(empty, buffer);
  const Dataset loaded = ReadDataset(buffer);
  EXPECT_EQ(loaded.ticks.size(), 0u);
  EXPECT_EQ(loaded.config.num_objects, 200);
}

TEST(DatasetIoTest, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "NOPE and then some bytes";
  EXPECT_THROW(ReadDataset(buffer), std::runtime_error);
}

TEST(DatasetIoTest, TruncationRejected) {
  const Dataset original = GenerateDataset(SmallConfig(), 5);
  std::stringstream buffer;
  WriteDataset(original, buffer);
  const std::string bytes = buffer.str();
  // Chop the stream at several points; every prefix must throw, never
  // crash or return garbage.
  for (size_t cut : {size_t{3}, size_t{10}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW(ReadDataset(truncated), std::runtime_error) << cut;
  }
}

TEST(DatasetIoTest, MissingFileThrows) {
  EXPECT_THROW(LoadDataset("/nonexistent/path/to/dataset.pdrd"),
               std::runtime_error);
}

Dataset OneObjectDataset(MotionState state) {
  Dataset ds;
  ds.config = SmallConfig();
  UpdateEvent e;
  e.tick = 0;
  e.id = 1;
  e.new_state = state;
  ds.ticks.push_back({e});
  return ds;
}

TEST(DatasetIoTest, NonFiniteCoordinatesRejectedOnWrite) {
  // A poisoned simulation must not be able to produce a file that parses:
  // the write path rejects NaN/Inf before any bytes of the state land.
  const double bads[] = {std::nan(""), std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity()};
  for (const double bad : bads) {
    for (int field = 0; field < 4; ++field) {
      MotionState s;
      s.pos = {10.0, 20.0};
      s.vel = {1.0, -1.0};
      if (field == 0) s.pos.x = bad;
      if (field == 1) s.pos.y = bad;
      if (field == 2) s.vel.x = bad;
      if (field == 3) s.vel.y = bad;
      std::stringstream buffer;
      EXPECT_THROW(WriteDataset(OneObjectDataset(s), buffer),
                   std::runtime_error)
          << "field " << field << " value " << bad;
    }
  }
}

TEST(DatasetIoTest, NonFiniteCoordinatesRejectedOnRead) {
  // Bytes crafted on disk (or corrupted in transit) with a NaN position
  // must be rejected at load, not propagated into the histogram.
  MotionState good;
  good.pos = {10.0, 20.0};
  good.vel = {1.0, -1.0};
  std::stringstream buffer;
  WriteDataset(OneObjectDataset(good), buffer);
  std::string bytes = buffer.str();

  // The state's pos.x is the first double of the final 36-byte state blob
  // (4 doubles + the 4-byte Tick); patch it to a NaN bit pattern.
  const uint64_t nan_bits = 0x7ff8000000000000ull;
  const size_t state_off = bytes.size() - (4 * 8 + 4);
  std::memcpy(bytes.data() + state_off, &nan_bits, sizeof(nan_bits));
  std::stringstream corrupt(bytes);
  try {
    ReadDataset(corrupt);
    FAIL() << "NaN position accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
        << "error message does not name the problem: " << e.what();
  }
}

TEST(DatasetIoTest, CorruptConfigRejected) {
  const Dataset original = GenerateDataset(SmallConfig(), 3);
  std::stringstream buffer;
  WriteDataset(original, buffer);
  std::string bytes = buffer.str();
  // The extent is the first double after magic + version.
  const double bad_extent = -1.0;
  std::memcpy(bytes.data() + 8, &bad_extent, sizeof(bad_extent));
  std::stringstream corrupt(bytes);
  EXPECT_THROW(ReadDataset(corrupt), std::runtime_error);
}

TEST(DatasetIoTest, LoadedDatasetReplaysIdentically) {
  // The loaded stream must drive an engine to the same state as the
  // original (bitwise-equal positions).
  const Dataset original = GenerateDataset(SmallConfig(), 12);
  std::stringstream buffer;
  WriteDataset(original, buffer);
  const Dataset loaded = ReadDataset(buffer);

  ObjectTable table_a, table_b;
  for (const auto& batch : original.ticks) {
    for (const UpdateEvent& e : batch) table_a.Apply(e);
  }
  for (const auto& batch : loaded.ticks) {
    for (const UpdateEvent& e : batch) table_b.Apply(e);
  }
  const auto pos_a = table_a.PositionsAt(20);
  const auto pos_b = table_b.PositionsAt(20);
  ASSERT_EQ(pos_a.size(), pos_b.size());
  for (size_t i = 0; i < pos_a.size(); ++i) EXPECT_EQ(pos_a[i], pos_b[i]);
}

}  // namespace
}  // namespace pdr
