// Workload log format tests: round-trip fidelity, the torn-tail /
// interior-corruption distinction, digest semantics, and repro bundles.
//
// The format contract mirrors the WAL's: an append may be torn by a dying
// process (Load returns the intact prefix, torn_tail set), but a fully
// present record that fails its checksum is interior corruption and the
// whole log is refused — a capture that lies would make every replay
// conclusion worthless.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "pdr/core/monitor.h"
#include "pdr/mobility/generator.h"
#include "pdr/obs/workload_log.h"
#include "pdr/replay/replayer.h"

namespace pdr {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pdr_wlog_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    dir_ = dir != nullptr ? dir : "/tmp";
  }
  ~TempDir() { std::system(("rm -rf '" + dir_ + "'").c_str()); }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

Dataset SmallDataset(uint64_t seed = 17) {
  WorkloadConfig config;
  config.WithExtent(300.0);
  config.num_objects = 120;
  config.max_update_interval = 6;
  config.seed = seed;
  return GenerateDataset(config, 10);
}

WorkloadLogHeader SmallHeader() {
  WorkloadLogHeader h;
  h.rho = 120.0 / (300.0 * 300.0);
  h.l = 40.0;
  h.lookahead = 3;
  h.every = 2;
  h.histogram_side = 20;
  h.horizon = 12;
  h.buffer_pages = 32;
  return h;
}

std::string ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(WorkloadLogTest, RecordedRunRoundTripsThroughLoad) {
  TempDir dir;
  const std::string path = dir.path() + "/run.wlog";
  const Dataset ds = SmallDataset();
  const WorkloadRecorder::Stats stats =
      RecordDataset(ds, path, SmallHeader());
  EXPECT_EQ(stats.ticks, 6);  // duration 10, cadence 2 -> ticks 0,2,...,10
  EXPECT_EQ(stats.updates, static_cast<int64_t>(ds.TotalUpdates()));
  EXPECT_GT(stats.bytes, 0);

  const WorkloadLog log = WorkloadLog::Load(path);
  EXPECT_FALSE(log.torn_tail);
  EXPECT_EQ(log.bytes, stats.bytes);
  EXPECT_DOUBLE_EQ(log.header.extent, ds.config.extent);
  EXPECT_EQ(log.header.num_objects, ds.config.num_objects);
  EXPECT_EQ(log.header.seed, ds.config.seed);
  EXPECT_EQ(log.header.duration, ds.duration());
  EXPECT_DOUBLE_EQ(log.header.l, 40.0);
  EXPECT_EQ(log.header.every, 2);

  int64_t ticks = 0, updates = 0;
  for (const WorkloadLogRecord& rec : log.records) {
    if (rec.kind == WorkloadLogRecord::Kind::kTick) {
      ++ticks;
      EXPECT_EQ(rec.query.q_t, rec.query.now + 3);
      EXPECT_NE(rec.query.digest, 0u);
      EXPECT_NE(rec.query.sig_hash, 0u);
    } else {
      updates += static_cast<int64_t>(rec.updates.size());
      for (const UpdateEvent& e : rec.updates) EXPECT_EQ(e.tick, rec.tick);
    }
  }
  EXPECT_EQ(ticks, stats.ticks);
  EXPECT_EQ(updates, stats.updates);
}

TEST(WorkloadLogTest, ConcurrentEpochsRoundTripThroughLoad) {
  TempDir dir;
  const std::string path = dir.path() + "/mvcc.wlog";
  const Dataset ds = SmallDataset();
  {
    WorkloadRecorder recorder(path, SmallHeader());
    // Epoch 1: empty batch (written anyway — every epoch needs its
    // updates record); epoch 2: a real batch; plus one snapshot answer
    // pinned to each.
    recorder.OnCommit(0, {}, 1);
    PdrMonitor::Delta d1;
    d1.now = 0;
    d1.q_t = 3;
    d1.epoch = 1;
    recorder.RecordTick(d1);
    recorder.OnCommit(1, ds.ticks[0], 2);
    PdrMonitor::Delta d2;
    d2.now = 1;
    d2.q_t = 4;
    d2.epoch = 2;
    recorder.RecordTick(d2);
  }
  const WorkloadLog log = WorkloadLog::Load(path);
  ASSERT_EQ(log.records.size(), 4u);
  EXPECT_EQ(log.records[0].kind, WorkloadLogRecord::Kind::kUpdates);
  EXPECT_EQ(log.records[0].epoch, 1u);
  EXPECT_TRUE(log.records[0].updates.empty());
  EXPECT_EQ(log.records[1].kind, WorkloadLogRecord::Kind::kTick);
  EXPECT_EQ(log.records[1].epoch, 1u);
  EXPECT_EQ(log.records[1].query.epoch, 1u);
  EXPECT_EQ(log.records[2].epoch, 2u);
  EXPECT_EQ(log.records[2].updates.size(), ds.ticks[0].size());
  EXPECT_EQ(log.records[3].query.epoch, 2u);
  EXPECT_TRUE(Replayer(log).concurrent());
}

TEST(WorkloadLogTest, SerializedLogsCarryNoEpochsAndStayByteStable) {
  // Epoch support is strictly additive: a serialized capture writes the
  // exact pre-MVCC record bytes (no trailing epoch field), loads with
  // every epoch zero, and is not classified as concurrent.
  TempDir dir;
  const std::string path = dir.path() + "/serial.wlog";
  RecordDataset(SmallDataset(), path, SmallHeader());
  const WorkloadLog log = WorkloadLog::Load(path);
  ASSERT_FALSE(log.records.empty());
  for (const WorkloadLogRecord& rec : log.records) {
    EXPECT_EQ(rec.epoch, 0u);
    if (rec.kind == WorkloadLogRecord::Kind::kTick) {
      EXPECT_EQ(rec.query.epoch, 0u);
    }
  }
  EXPECT_FALSE(Replayer(log).concurrent());
}

TEST(WorkloadLogTest, TornTailIsAcceptedAsPrefix) {
  TempDir dir;
  const std::string path = dir.path() + "/run.wlog";
  RecordDataset(SmallDataset(), path, SmallHeader());
  const WorkloadLog full = WorkloadLog::Load(path);

  // Chop into the final record, as a process dying mid-append would.
  const std::string bytes = ReadAll(path);
  const std::string torn_path = dir.path() + "/torn.wlog";
  WriteAll(torn_path, bytes.substr(0, bytes.size() - 9));

  const WorkloadLog torn = WorkloadLog::Load(torn_path);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.records.size() + 1, full.records.size());
  EXPECT_LT(torn.bytes, full.bytes);
}

TEST(WorkloadLogTest, InteriorCorruptionIsRejected) {
  TempDir dir;
  const std::string path = dir.path() + "/run.wlog";
  RecordDataset(SmallDataset(), path, SmallHeader());

  // Flip one payload byte in the middle of the file: the record is fully
  // present, so this must throw (checksum mismatch), never torn-tail.
  std::string bytes = ReadAll(path);
  bytes[bytes.size() / 2] ^= 0x40;
  const std::string bad_path = dir.path() + "/bad.wlog";
  WriteAll(bad_path, bytes);
  EXPECT_THROW(WorkloadLog::Load(bad_path), std::runtime_error);
}

TEST(WorkloadLogTest, BadMagicAndMissingFileAreRejected) {
  TempDir dir;
  EXPECT_THROW(WorkloadLog::Load(dir.path() + "/absent.wlog"),
               std::runtime_error);
  const std::string junk = dir.path() + "/junk.wlog";
  WriteAll(junk, "this is not a workload log at all");
  EXPECT_THROW(WorkloadLog::Load(junk), std::runtime_error);
}

TEST(WorkloadLogTest, TickDigestCoversAnswerBitsButNotWallTime) {
  PdrMonitor::Delta delta;
  delta.now = 4;
  delta.q_t = 7;
  delta.current.Add(Rect(10.0, 10.0, 40.0, 40.0));
  delta.explain.rho = 0.01;
  delta.explain.l = 30.0;
  const uint64_t base = TickDigest(delta);

  // Wall time and I/O are execution details, not answer bits.
  PdrMonitor::Delta timed = delta;
  timed.elapsed_ms = 123.0;
  timed.explain.elapsed_ms = 123.0;
  timed.explain.pages_read_physical = 999;
  EXPECT_EQ(TickDigest(timed), base);

  // The tiniest answer perturbation must move the digest (raw-bits
  // transcript: one ulp is a different bit pattern).
  PdrMonitor::Delta nudged = delta;
  nudged.current = Region();
  nudged.current.Add(
      Rect(10.0, 10.0, std::nextafter(40.0, 41.0), 40.0));
  EXPECT_NE(TickDigest(nudged), base);

  PdrMonitor::Delta degraded = delta;
  degraded.tier = AnswerTier::kHistogram;
  EXPECT_NE(TickDigest(degraded), base);
}

TEST(WorkloadLogTest, WriteBundleProducesSelfContainedDirectory) {
  TempDir dir;
  const std::string path = dir.path() + "/run.wlog";
  const Dataset ds = SmallDataset();

  WorkloadLogHeader header = SmallHeader();
  header.extent = ds.config.extent;
  header.num_objects = ds.config.num_objects;
  WorkloadRecorder recorder(path, header);
  recorder.ArmBundles(dir.path() + "/bundles");

  // An explicit bundle write (no flight dump attached): manifest + log.
  const std::string bundle =
      recorder.WriteBundle("unit_test", FlightRecorder::DumpInfo{});
  EXPECT_NE(bundle.find("bundle_000_unit_test"), std::string::npos) << bundle;
  EXPECT_EQ(recorder.stats().bundles, 1);

  const std::string wlog = BundleWorkloadLog(bundle);
  const WorkloadLog log = WorkloadLog::Load(wlog);
  EXPECT_EQ(log.header.num_objects, ds.config.num_objects);
  const std::string manifest = ReadAll(bundle + "/MANIFEST.json");
  EXPECT_NE(manifest.find("\"type\":\"repro_bundle\""), std::string::npos);
  EXPECT_NE(manifest.find("\"reason\":\"unit_test\""), std::string::npos);

  EXPECT_THROW(BundleWorkloadLog(dir.path() + "/not_a_bundle"),
               std::runtime_error);
  recorder.DisarmBundles();
}

}  // namespace
}  // namespace pdr
