#include "pdr/cheb/cheb2d.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pdr/common/random.h"

namespace pdr {
namespace {

TEST(Cheb2DTest, CoefficientCountTriangular) {
  EXPECT_EQ(Cheb2D(0).coefficient_count(), 1u);
  EXPECT_EQ(Cheb2D(1).coefficient_count(), 3u);
  EXPECT_EQ(Cheb2D(3).coefficient_count(), 10u);
  EXPECT_EQ(Cheb2D(5).coefficient_count(), 21u);
}

TEST(Cheb2DTest, EvalOfManualCoefficients) {
  Cheb2D poly(2);
  poly.coeff(0, 0) = 1.0;
  poly.coeff(1, 0) = 2.0;   // 2*T1(x)
  poly.coeff(0, 2) = -1.0;  // -T2(y)
  for (double x : {-0.7, 0.0, 0.4}) {
    for (double y : {-0.2, 0.5, 1.0}) {
      const double expected = 1.0 + 2.0 * x - (2 * y * y - 1);
      EXPECT_NEAR(poly.Eval(x, y), expected, 1e-12);
    }
  }
}

TEST(Cheb2DTest, ResetAndIsZero) {
  Cheb2D poly(3);
  EXPECT_TRUE(poly.IsZero());
  poly.coeff(1, 1) = 0.5;
  EXPECT_FALSE(poly.IsZero());
  poly.Reset();
  EXPECT_TRUE(poly.IsZero());
  EXPECT_NEAR(poly.Eval(0.3, -0.3), 0.0, 1e-15);
}

TEST(Cheb2DTest, AddIndicatorMeanValueMatchesArea) {
  // The (0,0) coefficient equals 1/pi^2 times the weighted integral of f;
  // rather than checking coefficients directly, verify that adding an
  // indicator then integrating the approximation against the Chebyshev
  // weight recovers the indicator's weighted mass.
  Cheb2D poly(7);
  const double x1 = -0.4, x2 = 0.2, y1 = 0.1, y2 = 0.7;
  poly.AddIndicator(x1, x2, y1, y2, 2.0);
  // a00 = (1/pi^2) * h * A0(x1,x2) * A0(y1,y2).
  const double expected_a00 = 2.0 / (M_PI * M_PI) *
                              (std::acos(x1) - std::acos(x2)) *
                              (std::acos(y1) - std::acos(y2));
  EXPECT_NEAR(poly.coeff(0, 0), expected_a00, 1e-12);
}

TEST(Cheb2DTest, AddIndicatorApproximatesIndicator) {
  // With a moderately high degree, the expansion should be near 0 far
  // outside the box and near h deep inside it.
  Cheb2D poly(12);
  poly.AddIndicator(-0.5, 0.5, -0.5, 0.5, 1.0);
  EXPECT_NEAR(poly.Eval(0.0, 0.0), 1.0, 0.25);
  EXPECT_NEAR(poly.Eval(0.9, 0.9), 0.0, 0.25);
  EXPECT_NEAR(poly.Eval(-0.9, 0.0), 0.0, 0.3);
}

TEST(Cheb2DTest, AddThenSubtractIsExactlyZero) {
  Cheb2D poly(5);
  poly.AddIndicator(-0.3, 0.6, -0.8, 0.1, 1.7);
  poly.AddIndicator(0.1, 0.9, 0.2, 0.8, 0.4);
  poly.AddIndicator(-0.3, 0.6, -0.8, 0.1, -1.7);
  poly.AddIndicator(0.1, 0.9, 0.2, 0.8, -0.4);
  for (double c : poly.raw()) {
    EXPECT_NEAR(c, 0.0, 1e-12);
  }
}

TEST(Cheb2DTest, AdditivityOfUpdates) {
  // Coefficients after two bumps equal the sum of individual fits
  // (Lemma 3).
  Cheb2D separate_a(4), separate_b(4), together(4);
  separate_a.AddIndicator(-0.5, 0.0, -0.5, 0.0, 1.0);
  separate_b.AddIndicator(0.2, 0.7, 0.1, 0.9, 2.0);
  together.AddIndicator(-0.5, 0.0, -0.5, 0.0, 1.0);
  together.AddIndicator(0.2, 0.7, 0.1, 0.9, 2.0);
  for (size_t i = 0; i < together.raw().size(); ++i) {
    EXPECT_NEAR(together.raw()[i],
                separate_a.raw()[i] + separate_b.raw()[i], 1e-12);
  }
}

TEST(Cheb2DTest, BoundContainsSampledValues) {
  Rng rng(11);
  Cheb2D poly(5);
  for (int i = 0; i < 6; ++i) {
    double x1 = rng.Uniform(-1, 1), x2 = rng.Uniform(-1, 1);
    double y1 = rng.Uniform(-1, 1), y2 = rng.Uniform(-1, 1);
    if (x1 > x2) std::swap(x1, x2);
    if (y1 > y2) std::swap(y1, y2);
    poly.AddIndicator(x1, x2, y1, y2, rng.Uniform(-2, 2));
  }
  for (int iter = 0; iter < 60; ++iter) {
    double x1 = rng.Uniform(-1, 1), x2 = rng.Uniform(-1, 1);
    double y1 = rng.Uniform(-1, 1), y2 = rng.Uniform(-1, 1);
    if (x1 > x2) std::swap(x1, x2);
    if (y1 > y2) std::swap(y1, y2);
    const Interval bound = poly.Bound(x1, x2, y1, y2);
    for (int s = 0; s < 50; ++s) {
      const double x = rng.Uniform(x1, x2);
      const double y = rng.Uniform(y1, y2);
      const double v = poly.Eval(x, y);
      EXPECT_GE(v, bound.lo - 1e-9);
      EXPECT_LE(v, bound.hi + 1e-9);
    }
  }
}

TEST(Cheb2DTest, BoundDegeneratePointInterval) {
  Cheb2D poly(4);
  poly.AddIndicator(-0.6, 0.6, -0.6, 0.6, 1.0);
  const double x = 0.25, y = -0.4;
  const Interval bound = poly.Bound(x, x, y, y);
  const double v = poly.Eval(x, y);
  EXPECT_NEAR(bound.lo, v, 1e-9);
  EXPECT_NEAR(bound.hi, v, 1e-9);
}

TEST(Cheb2DTest, BoundTightensUnderSubdivision) {
  Cheb2D poly(5);
  poly.AddIndicator(-0.5, 0.5, -0.5, 0.5, 3.0);
  const Interval whole = poly.Bound(-1, 1, -1, 1);
  const Interval quadrant = poly.Bound(0, 1, 0, 1);
  EXPECT_GE(quadrant.lo, whole.lo - 1e-12);
  EXPECT_LE(quadrant.hi, whole.hi + 1e-12);
}

TEST(Cheb2DTest, DegreeZeroIsConstantFit) {
  Cheb2D poly(0);
  poly.AddIndicator(-1, 1, -1, 1, 5.0);
  // Full-domain indicator of height 5: a00 = 5 (exact for constant fn).
  EXPECT_NEAR(poly.Eval(0.1, -0.9), 5.0, 1e-12);
}

}  // namespace
}  // namespace pdr
