// Metamorphic battery for the FFT whole-plane density engine.
//
// Each test states a property the density field must respect under a
// transformation of the *input* — no reference implementation involved:
//
//   * translation by whole cells shifts the block-sum field by exactly
//     those cells;
//   * reflecting every object through the domain center flips the field;
//   * mass is conserved: the raster sums to the in-domain object count,
//     and a grid-covering block reports the total everywhere;
//   * raising rho can only shrink the accept region and the
//     accepts+candidates superset (the threshold is monotone);
//   * edge-exact placements: objects sitting exactly on cell boundaries
//     and l-square edges classify per the paper's closed-top/right
//     semantics — pinned against the brute-force oracle with thresholds
//     straddling n +/- 0.5 objects, the same scheme boundary_test.cc uses
//     for the exact engine.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "pdr/common/random.h"
#include "pdr/common/region.h"
#include "pdr/core/oracle.h"
#include "pdr/fft/fft_engine.h"
#include "pdr/fft/raster.h"
#include "pdr/mobility/object.h"

namespace pdr {
namespace {

constexpr double kExtent = 200.0;
constexpr int kGrid = 40;  // cell edge g = 5

UpdateEvent InsertAt(ObjectId id, Vec2 p, Vec2 v = {0.0, 0.0}) {
  return {0, id, std::nullopt, MotionState{p, v, 0}};
}

// A motion state that reaches `target` exactly at tick `at` (the
// boundary_test idiom): start = target - v*at with v chosen so the
// arithmetic is exact in binary floating point.
UpdateEvent Reaching(ObjectId id, Vec2 target, Vec2 v, Tick at) {
  return InsertAt(id, {target.x - v.x * at, target.y - v.y * at}, v);
}

// Positions strictly inside cells, away from every boundary, so integer
// cell translations and reflections act exactly.
std::vector<Vec2> InteriorPositions(int n, uint64_t seed, double lo,
                                    double hi) {
  Rng rng(seed);
  std::vector<Vec2> out;
  out.reserve(n);
  const double g = kExtent / kGrid;
  while (static_cast<int>(out.size()) < n) {
    Vec2 p{rng.Uniform(lo, hi), rng.Uniform(lo, hi)};
    const double fx = std::fmod(p.x, g);
    const double fy = std::fmod(p.y, g);
    if (fx < 0.5 || fx > g - 0.5 || fy < 0.5 || fy > g - 0.5) continue;
    out.push_back(p);
  }
  return out;
}

FftDensityEngine MakeEngine() {
  return FftDensityEngine({.extent = kExtent, .grid = kGrid, .horizon = 20});
}

// ---------------------------------------------------------------------------
// Translation equivariance.

TEST(FftMetamorphicTest, TranslationByWholeCellsShiftsBlockSums) {
  const double g = kExtent / kGrid;
  const int dx = 5;  // cells
  const int dy = 3;
  const std::vector<Vec2> base = InteriorPositions(80, 21, 40.0, 140.0);

  FftDensityEngine original = MakeEngine();
  FftDensityEngine translated = MakeEngine();
  ObjectId id = 0;
  for (const Vec2& p : base) {
    original.Apply(InsertAt(id, p));
    translated.Apply(InsertAt(id, {p.x + dx * g, p.y + dy * g}));
    ++id;
  }

  for (int h : {0, 1, 2}) {
    const std::vector<int64_t> sums_o = original.BlockSums(0, h);
    const std::vector<int64_t> sums_t = translated.BlockSums(0, h);
    for (int r = 0; r < kGrid; ++r) {
      for (int c = 0; c < kGrid; ++c) {
        // Every object sits well inside the domain in both images and
        // every nonzero block is unclipped, so the fields must agree as
        // exact shifted copies wherever both indices exist.
        if (r - dy < 0 || c - dx < 0) {
          EXPECT_EQ(sums_t[r * kGrid + c], 0)
              << "h=" << h << " r=" << r << " c=" << c;
        } else {
          EXPECT_EQ(sums_t[r * kGrid + c],
                    sums_o[(r - dy) * kGrid + (c - dx)])
              << "h=" << h << " r=" << r << " c=" << c;
        }
      }
    }
  }
}

TEST(FftMetamorphicTest, TranslationByWholeCellsShiftsTheAnswerRegion) {
  const double g = kExtent / kGrid;
  const int dx = 4;
  const int dy = 4;
  const std::vector<Vec2> base = InteriorPositions(60, 22, 50.0, 120.0);

  FftDensityEngine original = MakeEngine();
  FftDensityEngine translated = MakeEngine();
  ObjectId id = 0;
  for (const Vec2& p : base) {
    original.Apply(InsertAt(id, p));
    translated.Apply(InsertAt(id, {p.x + dx * g, p.y + dy * g}));
    ++id;
  }

  const double rho = 10.0 / (kExtent * kExtent) * 4.0;
  const auto a = original.Query(0, rho, 20.0);
  const auto b = translated.Query(0, rho, 20.0);
  EXPECT_EQ(a.accepted_cells, b.accepted_cells);
  EXPECT_EQ(a.candidate_cells, b.candidate_cells);

  Region shifted;
  for (const Rect& r : a.region.rects()) {
    shifted.Add(Rect{r.x_lo + dx * g, r.y_lo + dy * g, r.x_hi + dx * g,
                     r.y_hi + dy * g});
  }
  EXPECT_NEAR(SymmetricDifferenceArea(shifted, b.region), 0.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Reflection equivariance.

TEST(FftMetamorphicTest, ReflectionThroughDomainCenterFlipsBlockSums) {
  const std::vector<Vec2> base = InteriorPositions(80, 23, 10.0, 190.0);

  FftDensityEngine original = MakeEngine();
  FftDensityEngine reflected = MakeEngine();
  ObjectId id = 0;
  for (const Vec2& p : base) {
    original.Apply(InsertAt(id, p));
    reflected.Apply(InsertAt(id, {kExtent - p.x, kExtent - p.y}));
    ++id;
  }

  for (int h : {0, 1, 3}) {
    const std::vector<int64_t> sums_o = original.BlockSums(0, h);
    const std::vector<int64_t> sums_r = reflected.BlockSums(0, h);
    for (int r = 0; r < kGrid; ++r) {
      for (int c = 0; c < kGrid; ++c) {
        // A strictly-interior position in cell j reflects into cell
        // m-1-j, and edge clipping is symmetric under the full flip, so
        // the whole field flips exactly.
        EXPECT_EQ(sums_r[r * kGrid + c],
                  sums_o[(kGrid - 1 - r) * kGrid + (kGrid - 1 - c)])
            << "h=" << h << " r=" << r << " c=" << c;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Mass conservation.

TEST(FftMetamorphicTest, MassIsConservedAndGridCoveringBlocksReportIt) {
  FftDensityEngine fft = MakeEngine();
  const std::vector<Vec2> base = InteriorPositions(70, 24, 5.0, 195.0);
  ObjectId id = 0;
  for (const Vec2& p : base) fft.Apply(InsertAt(id++, p));
  // Two out-of-domain stragglers must not count.
  fft.Apply(InsertAt(id++, {-5.0, 50.0}));
  fft.Apply(InsertAt(id++, {50.0, 250.0}));

  EXPECT_EQ(fft.FieldMass(0), 70);

  // h = m-1 makes every clipped block cover the whole grid.
  const std::vector<int64_t> sums = fft.BlockSums(0, kGrid - 1);
  for (size_t i = 0; i < sums.size(); ++i) {
    ASSERT_EQ(sums[i], 70) << "cell=" << i;
  }
}

// ---------------------------------------------------------------------------
// Monotonicity in rho.

TEST(FftMetamorphicTest, RaisingRhoOnlyShrinksBothRegions) {
  FftDensityEngine fft = MakeEngine();
  const std::vector<Vec2> base = InteriorPositions(120, 25, 60.0, 140.0);
  ObjectId id = 0;
  for (const Vec2& p : base) fft.Apply(InsertAt(id++, p));

  const double l = 24.0;
  std::optional<FftDensityEngine::QueryResult> previous;
  for (double scale : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double rho = scale * 120.0 / (kExtent * kExtent);
    const auto got = fft.Query(0, rho, l);
    if (previous) {
      // region(rho_hi) subset region(rho_lo), same for the superset.
      EXPECT_NEAR(RegionDifference(got.region, previous->region).Area(), 0.0,
                  1e-9)
          << "scale=" << scale;
      EXPECT_NEAR(
          RegionDifference(got.maybe_region, previous->maybe_region).Area(),
          0.0, 1e-9)
          << "scale=" << scale;
      EXPECT_LE(got.accepted_cells, previous->accepted_cells);
    }
    previous = got;
  }
}

// ---------------------------------------------------------------------------
// Edge-exact placements vs. the brute-force oracle (boundary_test scheme:
// a stack of n objects at an exact position, thresholds at n +/- 0.5).

struct EdgeRig {
  FftDensityEngine fft{{.extent = kExtent, .grid = kGrid, .horizon = 20}};
  Oracle oracle{kExtent};

  void Apply(const UpdateEvent& e) {
    fft.Apply(e);
    oracle.Apply(e);
  }

  // Area-based sandwich: accepts subset truth subset maybe.
  void ExpectSandwich(Tick q_t, double rho, double l) {
    const auto got = fft.Query(q_t, rho, l);
    const Region truth = oracle.DenseRegions(q_t, rho, l);
    EXPECT_NEAR(RegionDifference(got.region, truth).Area(), 0.0, 1e-9);
    EXPECT_NEAR(RegionDifference(truth, got.maybe_region).Area(), 0.0, 1e-9);
  }
};

TEST(FftMetamorphicTest, StackOnGridlineClassifiesPerClosedTopRight) {
  // n objects exactly at (100, 100) — a raster gridline crossing. Closed
  // top/right puts them in cell (19, 19), the cell covering (95, 100]^2.
  constexpr int kN = 8;
  constexpr double kL = 20.0;  // l/(2g) = 2 -> a = 1, b = 2
  EdgeRig rig;
  for (ObjectId i = 0; i < kN; ++i) rig.Apply(InsertAt(i, {100.0, 100.0}));

  // Threshold just below n: T = n, the stack alone satisfies it.
  const double rho_lo = (kN - 0.5) / (kL * kL);
  const auto got = rig.fft.Query(0, rho_lo, kL);
  // Accept block: cells 18..20 both axes -> [90, 105)^2, area 225. Under
  // open-left binning the stack would land in cell 20 and the accept
  // square would sit at [95, 110)^2 instead — this pins the convention.
  EXPECT_EQ(got.accepted_cells, 9);
  EXPECT_NEAR(got.region.Area(), 225.0, 1e-9);
  Region expected_accept;
  expected_accept.Add(Rect{90.0, 90.0, 105.0, 105.0});
  EXPECT_NEAR(SymmetricDifferenceArea(got.region, expected_accept), 0.0,
              1e-9);
  // Maybe block: cells 17..21 -> [85, 110)^2, area 625.
  EXPECT_NEAR(got.maybe_region.Area(), 625.0, 1e-9);
  rig.ExpectSandwich(0, rho_lo, kL);

  // Threshold just above n: nothing anywhere can be dense.
  const double rho_hi = (kN + 0.5) / (kL * kL);
  const auto none = rig.fft.Query(0, rho_hi, kL);
  EXPECT_EQ(none.accepted_cells, 0);
  EXPECT_TRUE(none.region.IsEmpty());
  EXPECT_TRUE(none.maybe_region.IsEmpty());
  rig.ExpectSandwich(0, rho_hi, kL);
}

TEST(FftMetamorphicTest, StackAtDomainCornerStaysInsideTheSandwich) {
  // The top-right corner (extent, extent) belongs to cell (m-1, m-1)
  // under closed-top/right; the accept/maybe blocks clip at the edge.
  constexpr int kN = 6;
  constexpr double kL = 20.0;
  EdgeRig rig;
  for (ObjectId i = 0; i < kN; ++i) rig.Apply(InsertAt(i, {200.0, 200.0}));

  const double rho_lo = (kN - 0.5) / (kL * kL);
  const auto got = rig.fft.Query(0, rho_lo, kL);
  // Accept block 38..40 clips to cells 38..39 -> [190, 200)^2, area 100.
  EXPECT_EQ(got.accepted_cells, 4);
  EXPECT_NEAR(got.region.Area(), 100.0, 1e-9);
  rig.ExpectSandwich(0, rho_lo, kL);

  const double rho_hi = (kN + 0.5) / (kL * kL);
  EXPECT_TRUE(rig.fft.Query(0, rho_hi, kL).region.IsEmpty());
  rig.ExpectSandwich(0, rho_hi, kL);
}

TEST(FftMetamorphicTest, MoverArrivingExactlyOnGridlineAtQueryTime) {
  // Seven objects wait at (100, 100); one arrives exactly at tick 4 (the
  // start/velocity arithmetic is exact in binary floating point). The
  // accept square must only appear once the mover lands in the stack's
  // cell.
  constexpr double kL = 20.0;
  EdgeRig rig;
  for (ObjectId i = 0; i < 7; ++i) rig.Apply(InsertAt(i, {100.0, 100.0}));
  rig.Apply(Reaching(7, {100.0, 100.0}, {5.0, 0.0}, /*at=*/4));

  const double rho = (8 - 0.5) / (kL * kL);  // T = 8: needs all eight
  const auto before = rig.fft.Query(0, rho, kL);
  EXPECT_EQ(before.accepted_cells, 0);
  rig.ExpectSandwich(0, rho, kL);

  const auto after = rig.fft.Query(4, rho, kL);
  EXPECT_EQ(after.accepted_cells, 9);
  EXPECT_NEAR(after.region.Area(), 225.0, 1e-9);
  rig.ExpectSandwich(4, rho, kL);
}

TEST(FftMetamorphicTest, RasterAndOracleAgreeOnBoundaryMembership) {
  // Direct pin of the binning convention the engine shares with
  // Definition 1: a coordinate on a gridline belongs to the cell whose
  // closed top/right edge it is.
  const RasterGrid grid(kExtent, kGrid);
  for (int j = 1; j < kGrid; ++j) {
    EXPECT_EQ(grid.ColOf(j * 5.0), j - 1) << "j=" << j;
  }
  // And the l-square oracle counts its top/right edge: an object exactly
  // on the edge of S_l(p) is inside, one on the left/bottom edge is not.
  Oracle oracle(kExtent);
  oracle.Apply(InsertAt(0, {110.0, 100.0}));  // on the right edge for p=(100,100)
  const double rho = 0.5 / 400.0;  // T = 1
  const Region dense = oracle.DenseRegions(0, rho, 20.0);
  // p = (100, 100): S_20 = (90, 110] x (90, 110] contains x = 110.
  EXPECT_FALSE(dense.IsEmpty());
  EXPECT_NEAR(RegionDifference(
                  Region({Rect{100.0, 90.0, 100.5, 110.0}}), dense)
                  .Area(),
              0.0, 1e-9);
}

}  // namespace
}  // namespace pdr
