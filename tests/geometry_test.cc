#include "pdr/common/geometry.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pdr {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, Vec2(4, -2));
  EXPECT_EQ(a - b, Vec2(-2, 6));
  EXPECT_EQ(a * 2.0, Vec2(2, 4));
  EXPECT_DOUBLE_EQ(a.Dot(b), 3 - 8);
  EXPECT_DOUBLE_EQ(b.Norm2(), 25);
  EXPECT_DOUBLE_EQ(b.Norm(), 5);
  EXPECT_DOUBLE_EQ(a.DistanceTo(a), 0);
  EXPECT_DOUBLE_EQ(Vec2(0, 0).DistanceTo(Vec2(3, 4)), 5);
}

TEST(Vec2Test, CompoundAssign) {
  Vec2 a{1, 1};
  a += Vec2{2, 3};
  EXPECT_EQ(a, Vec2(3, 4));
}

TEST(RectTest, BasicGeometry) {
  const Rect r(1, 2, 4, 6);
  EXPECT_DOUBLE_EQ(r.Width(), 3);
  EXPECT_DOUBLE_EQ(r.Height(), 4);
  EXPECT_DOUBLE_EQ(r.Area(), 12);
  EXPECT_EQ(r.Center(), Vec2(2.5, 4));
  EXPECT_FALSE(r.Empty());
  EXPECT_TRUE(Rect(1, 1, 1, 5).Empty());
  EXPECT_TRUE(Rect(2, 2, 1, 5).Empty());
  EXPECT_DOUBLE_EQ(Rect(2, 2, 1, 5).Area(), 0);
}

TEST(RectTest, FromCornersNormalizes) {
  const Rect r = Rect::FromCorners({4, 1}, {1, 6});
  EXPECT_EQ(r, Rect(1, 1, 4, 6));
}

TEST(RectTest, CenteredSquare) {
  const Rect s = Rect::CenteredSquare({10, 20}, 4);
  EXPECT_EQ(s, Rect(8, 18, 12, 22));
}

TEST(RectTest, HalfOpenMembership) {
  const Rect r(0, 0, 1, 1);
  EXPECT_TRUE(r.ContainsHalfOpen({0, 0}));
  EXPECT_TRUE(r.ContainsHalfOpen({0.999, 0.999}));
  EXPECT_FALSE(r.ContainsHalfOpen({1, 0.5}));
  EXPECT_FALSE(r.ContainsHalfOpen({0.5, 1}));
}

TEST(RectTest, LSquareMembershipMatchesDefinition1) {
  // S_l includes top and right edges, excludes left and bottom edges.
  const Rect s = Rect::CenteredSquare({0, 0}, 2);  // [-1,1]^2
  EXPECT_TRUE(s.ContainsLSquare({1, 1}));     // top-right corner: in
  EXPECT_TRUE(s.ContainsLSquare({1, 0}));     // right edge: in
  EXPECT_TRUE(s.ContainsLSquare({0, 1}));     // top edge: in
  EXPECT_FALSE(s.ContainsLSquare({-1, 0}));   // left edge: out
  EXPECT_FALSE(s.ContainsLSquare({0, -1}));   // bottom edge: out
  EXPECT_FALSE(s.ContainsLSquare({-1, -1}));  // bottom-left corner: out
  EXPECT_TRUE(s.ContainsLSquare({0, 0}));
}

TEST(RectTest, ClosedMembership) {
  const Rect r(0, 0, 1, 1);
  EXPECT_TRUE(r.ContainsClosed({0, 0}));
  EXPECT_TRUE(r.ContainsClosed({1, 1}));
  EXPECT_FALSE(r.ContainsClosed({1.0001, 1}));
}

TEST(RectTest, IntersectionPredicates) {
  const Rect a(0, 0, 2, 2);
  const Rect b(2, 0, 4, 2);  // shares an edge with a
  EXPECT_TRUE(a.IntersectsClosed(b));
  EXPECT_FALSE(a.IntersectsOpen(b));
  const Rect c(1, 1, 3, 3);
  EXPECT_TRUE(a.IntersectsOpen(c));
  const Rect d(5, 5, 6, 6);
  EXPECT_FALSE(a.IntersectsClosed(d));
}

TEST(RectTest, IntersectionAndUnion) {
  const Rect a(0, 0, 4, 4), b(2, 1, 6, 3);
  EXPECT_EQ(a.Intersection(b), Rect(2, 1, 4, 3));
  EXPECT_EQ(a.Union(b), Rect(0, 0, 6, 4));
  EXPECT_TRUE(a.Intersection(Rect(5, 5, 6, 6)).Empty());
}

TEST(RectTest, ContainsRect) {
  const Rect a(0, 0, 10, 10);
  EXPECT_TRUE(a.Contains(Rect(0, 0, 10, 10)));
  EXPECT_TRUE(a.Contains(Rect(1, 1, 9, 9)));
  EXPECT_FALSE(a.Contains(Rect(-1, 1, 9, 9)));
}

TEST(RectTest, ExpandedAndClipped) {
  const Rect a(2, 2, 4, 4);
  EXPECT_EQ(a.Expanded(1), Rect(1, 1, 5, 5));
  EXPECT_EQ(a.Expanded(1).ClippedTo(Rect(0, 0, 4.5, 10)),
            Rect(1, 1, 4.5, 5));
}

TEST(RectTest, AlmostEquals) {
  const Rect a(0, 0, 1, 1);
  EXPECT_TRUE(a.AlmostEquals(Rect(1e-12, 0, 1, 1)));
  EXPECT_FALSE(a.AlmostEquals(Rect(1e-3, 0, 1, 1)));
}

TEST(RectTest, Streaming) {
  std::ostringstream os;
  os << Rect(0, 1, 2, 3);
  EXPECT_EQ(os.str(), "[0, 2) x [1, 3)");
  EXPECT_EQ(Vec2(1, 2).ToString(), "(1, 2)");
}

TEST(GridTest, CellIndexing) {
  const Grid g(100.0, 10);
  EXPECT_DOUBLE_EQ(g.cell_edge(), 10.0);
  EXPECT_EQ(g.cell_count(), 100);
  EXPECT_EQ(g.ColOf(0), 0);
  EXPECT_EQ(g.ColOf(9.999), 0);
  EXPECT_EQ(g.ColOf(10.0), 1);
  EXPECT_EQ(g.ColOf(99.999), 9);
  // Domain top edge is clamped into the last cell.
  EXPECT_EQ(g.ColOf(100.0), 9);
  EXPECT_EQ(g.CellOf({15, 25}), 2 * 10 + 1);
}

TEST(GridTest, CellRectRoundTrip) {
  const Grid g(1000.0, 25);
  for (int row : {0, 7, 24}) {
    for (int col : {0, 13, 24}) {
      const Rect cell = g.CellRect(col, row);
      EXPECT_EQ(g.CellOf(cell.Center()), g.FlatIndex(col, row));
      EXPECT_EQ(g.CellRect(g.FlatIndex(col, row)), cell);
    }
  }
}

TEST(GridTest, CellsTileDomainExactly) {
  const Grid g(90.0, 9);
  double total = 0;
  for (int i = 0; i < g.cell_count(); ++i) total += g.CellRect(i).Area();
  EXPECT_DOUBLE_EQ(total, 90.0 * 90.0);
}

TEST(GridTest, InDomain) {
  const Grid g(50.0, 5);
  EXPECT_TRUE(g.InDomain({0, 0}));
  EXPECT_TRUE(g.InDomain({50, 50}));
  EXPECT_FALSE(g.InDomain({-0.001, 10}));
  EXPECT_FALSE(g.InDomain({10, 50.001}));
}

TEST(GridTest, ClampHelper) {
  EXPECT_DOUBLE_EQ(Clamp(5, 0, 10), 5);
  EXPECT_DOUBLE_EQ(Clamp(-5, 0, 10), 0);
  EXPECT_DOUBLE_EQ(Clamp(15, 0, 10), 10);
}

}  // namespace
}  // namespace pdr
