#include "pdr/core/pa_engine.h"

#include <gtest/gtest.h>

#include "pdr/core/fr_engine.h"
#include "pdr/core/metrics.h"
#include "pdr/core/oracle.h"
#include "pdr/core/simulation.h"
#include "pdr/mobility/generator.h"

namespace pdr {
namespace {

constexpr double kExtent = 200.0;

PaEngine::Options SmallOptions(int g = 8, int degree = 6) {
  return {.extent = kExtent, .poly_side = g, .degree = degree,
          .horizon = 20, .l = 20.0, .eval_grid = 256};
}

TEST(PaEngineTest, NoIoCharged) {
  PaEngine pa(SmallOptions());
  for (const UpdateEvent& e :
       MakeClusteredInserts(800, 2, kExtent, 8.0, 0.2, 51)) {
    pa.Apply(e);
  }
  const auto result = pa.Query(0, 0.05);
  EXPECT_EQ(result.cost.io_reads(), 0);
  EXPECT_DOUBLE_EQ(result.cost.io_ms, 0.0);
  EXPECT_GT(result.cost.cpu_ms, 0.0);
}

TEST(PaEngineTest, AccurateOnClusteredWorkload) {
  PaEngine pa(SmallOptions());
  Oracle oracle(kExtent);
  for (const UpdateEvent& e :
       MakeClusteredInserts(3000, 3, kExtent, 10.0, 0.2, 52)) {
    pa.Apply(e);
    oracle.Apply(e);
  }
  const double rho = 2.0 * 3000 / (kExtent * kExtent);
  const Region truth = oracle.DenseRegions(0, rho, pa.options().l);
  ASSERT_GT(truth.Area(), 0.0);
  const auto result = pa.Query(0, rho);
  const AccuracyMetrics m = CompareRegions(truth, result.region);
  // The paper reports PA errors under ~10%; this workload is smooth so a
  // similar band should hold (allow headroom for the smaller setup).
  EXPECT_LT(m.false_positive_ratio, 0.5) << "r_fp=" << m.false_positive_ratio;
  EXPECT_LT(m.false_negative_ratio, 0.5) << "r_fn=" << m.false_negative_ratio;
  EXPECT_GT(m.Jaccard(), 0.5);
}

TEST(PaEngineTest, TracksMovingObjectsAcrossHorizon) {
  PaEngine pa(SmallOptions());
  Oracle oracle(kExtent);
  // Tight moving convoy: dense region must move with it.
  std::vector<UpdateEvent> events;
  Rng rng(53);
  for (ObjectId id = 0; id < 60; ++id) {
    const Vec2 p{40 + rng.Uniform(-4, 4), 100 + rng.Uniform(-4, 4)};
    events.push_back({0, id, std::nullopt, MotionState{p, {5, 0}, 0}});
  }
  for (const UpdateEvent& e : events) {
    pa.Apply(e);
    oracle.Apply(e);
  }
  const double rho = 20.0 / (20.0 * 20.0);
  for (Tick t : {0, 10, 20}) {
    const auto result = pa.Query(t, rho);
    const Vec2 convoy_center{40.0 + 5.0 * t, 100.0};
    EXPECT_TRUE(result.region.Contains(convoy_center)) << "t=" << t;
    // Where the convoy used to be must no longer be dense (t >= 10 moves
    // it 50 miles away).
    if (t >= 10) {
      EXPECT_FALSE(result.region.Contains({40, 100})) << "t=" << t;
    }
  }
}

TEST(PaEngineTest, GridScanAgreesWithBnb) {
  PaEngine pa(SmallOptions());
  for (const UpdateEvent& e :
       MakeClusteredInserts(1500, 2, kExtent, 9.0, 0.2, 54)) {
    pa.Apply(e);
  }
  const double rho = 1.5 * 1500 / (kExtent * kExtent);
  const auto bnb = pa.Query(0, rho);
  const auto scan = pa.QueryGridScan(0, rho);
  const double base =
      std::max(1.0, std::max(bnb.region.Area(), scan.region.Area()));
  EXPECT_LT(SymmetricDifferenceArea(bnb.region, scan.region) / base, 0.15);
  EXPECT_LT(bnb.bnb.point_evals, scan.bnb.point_evals);
}

TEST(PaEngineTest, UpdateStreamKeepsModelInSync) {
  WorkloadConfig config;
  config.WithExtent(kExtent);
  config.num_objects = 600;
  config.max_update_interval = 10;
  config.network.grid_nodes = 8;
  config.seed = 55;
  const Dataset ds = GenerateDataset(config, 12);

  PaEngine incremental(SmallOptions());
  ReplayInto(ds, -1, &incremental);

  // Rebuild from scratch at t=12 with the objects' final states: the
  // incrementally maintained model must match the rebuilt one closely at
  // every tick both cover (deltas are algebraically exact; only fp noise
  // differs).
  ObjectTable table;
  for (const auto& batch : ds.ticks) {
    for (const UpdateEvent& e : batch) table.Apply(e);
  }
  PaEngine rebuilt(SmallOptions());
  rebuilt.AdvanceTo(12);
  for (const auto& [id, state] : table.LiveObjects()) {
    // Insert with the original reference tick preserved.
    UpdateEvent e{12, id, std::nullopt, state};
    // Rebuilt model writes [12, 12+H] from the *current* states, matching
    // the live ticks of the incremental model.
    rebuilt.Apply(e);
  }
  // Coverage contract: with U = 10 every live state covers ticks up to
  // t_ref + H >= (now - U) + H = 22, so compare only ticks <= now + W
  // where W = H - U = 10. There the two models are algebraically equal.
  Rng rng(56);
  for (Tick t : {12, 18, 22}) {
    for (int i = 0; i < 200; ++i) {
      const Vec2 p{rng.Uniform(0, kExtent), rng.Uniform(0, kExtent)};
      EXPECT_NEAR(incremental.Density(t, p), rebuilt.Density(t, p), 1e-9)
          << "t=" << t;
    }
  }
}

TEST(PaEngineTest, IntervalQueryCoversSnapshots) {
  PaEngine pa(SmallOptions());
  for (const UpdateEvent& e : MakeUniformInserts(900, kExtent, 1.5, 57)) {
    pa.Apply(e);
  }
  const double rho = 2.5 * 900 / (kExtent * kExtent);
  const auto interval = pa.QueryInterval(0, 5, rho);
  for (Tick t = 0; t <= 5; ++t) {
    const auto snap = pa.Query(t, rho);
    EXPECT_NEAR(IntersectionArea(interval.region, snap.region),
                snap.region.Area(), 1e-6)
        << "interval answer must cover snapshot at t=" << t;
  }
}

TEST(PaEngineTest, MorePolynomialsImproveAccuracy) {
  const auto events = MakeClusteredInserts(3000, 3, kExtent, 8.0, 0.15, 58);
  Oracle oracle(kExtent);
  for (const UpdateEvent& e : events) oracle.Apply(e);
  const double rho = 2.0 * 3000 / (kExtent * kExtent);

  auto run = [&](int g) {
    PaEngine pa(SmallOptions(g, 5));
    for (const UpdateEvent& e : events) pa.Apply(e);
    const Region truth = oracle.DenseRegions(0, rho, pa.options().l);
    const AccuracyMetrics m = CompareRegions(truth, pa.Query(0, rho).region);
    return m.false_positive_ratio + m.false_negative_ratio;
  };
  const double coarse = run(2);
  const double fine = run(10);
  EXPECT_LT(fine, coarse + 0.05)
      << "g=2 err " << coarse << " vs g=10 err " << fine;
}

}  // namespace
}  // namespace pdr
