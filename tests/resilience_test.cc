// Deadline-aware execution: cooperative cancellation primitives, typed
// horizon validation, admission control, the graceful-degradation ladder,
// transient-fault retry, and the monitor's resilience integration.
//
// Tier tests reach each rung *deterministically* via the enable_exact /
// enable_approx toggles (and via pre-expired deadlines, which the engines
// detect at their entry cancellation point) — no timing races.

#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pdr/core/fr_engine.h"
#include "pdr/core/monitor.h"
#include "pdr/core/oracle.h"
#include "pdr/core/pa_engine.h"
#include "pdr/fft/fft_engine.h"
#include "pdr/mobility/generator.h"
#include "pdr/obs/audit.h"
#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/obs.h"
#include "pdr/resilience/admission.h"
#include "pdr/resilience/deadline.h"
#include "pdr/resilience/executor.h"
#include "pdr/storage/fault_injector.h"

namespace pdr {
namespace {

constexpr double kExtent = 200.0;
constexpr double kL = 25.0;
constexpr Tick kHorizon = 20;

FrEngine::Options FrOpts() {
  return {.extent = kExtent,
          .histogram_side = 16,
          .horizon = kHorizon,
          .buffer_pages = 64,
          .io_ms = 10.0};
}

PaEngine::Options PaOpts() {
  return {.extent = kExtent,
          .poly_side = 4,
          .degree = 5,
          .horizon = kHorizon,
          .l = kL,
          .eval_grid = 64};
}

std::vector<UpdateEvent> Workload(int objects = 200, uint64_t seed = 7) {
  return MakeClusteredInserts(objects, 2, kExtent, 10.0, 0.2, seed);
}

double WorkloadRho(int objects = 200) {
  return 1.5 * objects / (kExtent * kExtent);
}

bool SameRects(const Region& a, const Region& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const Rect& ra = a.rects()[i];
    const Rect& rb = b.rects()[i];
    if (ra.x_lo != rb.x_lo || ra.y_lo != rb.y_lo || ra.x_hi != rb.x_hi ||
        ra.y_hi != rb.y_hi) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Cancellation primitives.

TEST(ResilienceTest, UnarmedDeadlineNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMs(), 1e17);
  QueryControl ctl;
  EXPECT_FALSE(ctl.active());
  EXPECT_FALSE(ctl.ShouldCancel());
  EXPECT_NO_THROW(ctl.Check());
}

TEST(ResilienceTest, ArmedDeadlineExpiresAndReportsBudget) {
  const Deadline generous = Deadline::After(1e9);
  EXPECT_TRUE(generous.armed());
  EXPECT_FALSE(generous.Expired());
  EXPECT_GT(generous.RemainingMs(), 1e8);
  EXPECT_EQ(generous.budget_ms(), 1e9);

  const Deadline expired = Deadline::After(0.0);
  EXPECT_TRUE(expired.Expired());
  EXPECT_EQ(expired.RemainingMs(), 0.0);

  QueryControl ctl;
  ctl.deadline = expired;
  EXPECT_TRUE(ctl.active());
  EXPECT_TRUE(ctl.ShouldCancel());
  EXPECT_THROW(ctl.Check(), CancelledError);
}

TEST(ResilienceTest, CancelTokenIsStickyAndObservedByControl) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  QueryControl ctl;
  ctl.token = &token;
  EXPECT_TRUE(ctl.active());
  EXPECT_NO_THROW(ctl.Check());
  token.Cancel();
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(ctl.ShouldCancel());
  EXPECT_THROW(ctl.Check(), CancelledError);
}

// ---------------------------------------------------------------------------
// Horizon validation: out-of-window query times must fail loudly with the
// typed error (they used to be assert-only, i.e. silent in Release).

TEST(ResilienceTest, FrQueryOutsideHorizonThrowsHorizonError) {
  FrEngine fr(FrOpts());
  for (const UpdateEvent& e : Workload()) fr.Apply(e);
  fr.AdvanceTo(5);
  const double rho = WorkloadRho();

  EXPECT_NO_THROW(fr.Query(5, rho, kL));
  EXPECT_NO_THROW(fr.Query(5 + kHorizon, rho, kL));
  EXPECT_THROW(fr.Query(4, rho, kL), HorizonError);
  EXPECT_THROW(fr.Query(5 + kHorizon + 1, rho, kL), HorizonError);
  EXPECT_THROW(fr.DhOnlyQuery(4, rho, kL, false), HorizonError);
  EXPECT_THROW(fr.QueryInterval(5, 5 + kHorizon + 1, rho, kL), HorizonError);

  try {
    fr.Query(5 + kHorizon + 3, rho, kL);
    FAIL() << "expected HorizonError";
  } catch (const HorizonError& e) {
    EXPECT_EQ(e.q_t(), 5 + kHorizon + 3);
    EXPECT_EQ(e.now(), 5);
    EXPECT_EQ(e.horizon(), kHorizon);
  }
}

TEST(ResilienceTest, PaQueryOutsideHorizonThrowsHorizonError) {
  PaEngine pa(PaOpts());
  for (const UpdateEvent& e : Workload()) pa.Apply(e);
  pa.AdvanceTo(3);
  const double rho = WorkloadRho();

  EXPECT_NO_THROW(pa.Query(3, rho));
  EXPECT_NO_THROW(pa.Query(3 + kHorizon, rho));
  EXPECT_THROW(pa.Query(2, rho), HorizonError);
  EXPECT_THROW(pa.Query(3 + kHorizon + 1, rho), HorizonError);
  EXPECT_THROW(pa.QueryInterval(2, 3, rho), HorizonError);
  EXPECT_THROW(pa.QueryGridScan(3 + kHorizon + 1, rho), HorizonError);
}

// ---------------------------------------------------------------------------
// Engines honor the control at their entry point: a pre-expired deadline
// cancels deterministically before any work runs.

TEST(ResilienceTest, EnginesCancelAtEntryOnPreExpiredDeadline) {
  FrEngine fr(FrOpts());
  PaEngine pa(PaOpts());
  for (const UpdateEvent& e : Workload()) {
    fr.Apply(e);
    pa.Apply(e);
  }
  const double rho = WorkloadRho();

  QueryControl ctl;
  ctl.deadline = Deadline::After(0.0);
  EXPECT_THROW(fr.Query(0, rho, kL, false, ctl), CancelledError);
  EXPECT_THROW(pa.Query(0, rho, ctl), CancelledError);

  CancelToken token;
  token.Cancel();
  QueryControl tctl;
  tctl.token = &token;
  EXPECT_THROW(fr.Query(0, rho, kL, false, tctl), CancelledError);
  EXPECT_THROW(pa.Query(0, rho, tctl), CancelledError);
}

// An active-but-generous control must not change the answer in any bit.
TEST(ResilienceTest, GenerousControlIsBitIdenticalToNoControl) {
  FrEngine fr(FrOpts());
  PaEngine pa(PaOpts());
  for (const UpdateEvent& e : Workload()) {
    fr.Apply(e);
    pa.Apply(e);
  }
  const double rho = WorkloadRho();

  const auto fr_plain = fr.Query(0, rho, kL);
  const auto pa_plain = pa.Query(0, rho);

  QueryControl ctl;
  ctl.deadline = Deadline::After(1e9);
  const auto fr_ctl = fr.Query(0, rho, kL, false, ctl);
  const auto pa_ctl = pa.Query(0, rho, ctl);

  EXPECT_TRUE(SameRects(fr_plain.region, fr_ctl.region));
  EXPECT_EQ(fr_plain.objects_fetched, fr_ctl.objects_fetched);
  EXPECT_EQ(fr_plain.sweep.dense_rects, fr_ctl.sweep.dense_rects);
  EXPECT_TRUE(SameRects(pa_plain.region, pa_ctl.region));
  EXPECT_EQ(pa_plain.bnb.nodes_visited, pa_ctl.bnb.nodes_visited);
}

// ---------------------------------------------------------------------------
// Admission control.

TEST(ResilienceTest, AdmissionBoundsInflightAndCountsSheds) {
  AdmissionController ac({.max_inflight = 2});
  auto p1 = ac.TryAdmit();
  auto p2 = ac.TryAdmit();
  EXPECT_TRUE(p1.ok());
  EXPECT_TRUE(p2.ok());
  EXPECT_EQ(ac.inflight(), 2);

  auto p3 = ac.TryAdmit();
  EXPECT_FALSE(p3.ok());
  EXPECT_EQ(ac.shed(), 1);
  EXPECT_EQ(ac.admitted(), 2);
  EXPECT_NEAR(ac.ShedRate(), 1.0 / 3.0, 1e-12);

  p1.Release();
  EXPECT_EQ(ac.inflight(), 1);
  auto p4 = ac.TryAdmit();
  EXPECT_TRUE(p4.ok());
  EXPECT_EQ(ac.inflight(), 2);
}

TEST(ResilienceTest, AdmissionPermitMoveTransfersTheSlot) {
  AdmissionController ac({.max_inflight = 1});
  auto p1 = ac.TryAdmit();
  ASSERT_TRUE(p1.ok());
  AdmissionController::Permit p2 = std::move(p1);
  EXPECT_FALSE(p1.ok());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_TRUE(p2.ok());
  EXPECT_EQ(ac.inflight(), 1);
  {
    AdmissionController::Permit p3 = std::move(p2);
    EXPECT_EQ(ac.inflight(), 1);
  }  // p3 destructor releases
  EXPECT_EQ(ac.inflight(), 0);
  EXPECT_TRUE(ac.TryAdmit().ok());
}

TEST(ResilienceTest, AdmissionNeverExceedsBoundUnderContention) {
  constexpr int kBound = 3;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 500;
  AdmissionController ac({.max_inflight = kBound});
  std::atomic<int> live{0};
  std::atomic<int> max_live{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) {
        auto permit = ac.TryAdmit();
        if (!permit.ok()) continue;
        const int now_live = live.fetch_add(1) + 1;
        int seen = max_live.load();
        while (now_live > seen &&
               !max_live.compare_exchange_weak(seen, now_live)) {
        }
        std::this_thread::yield();
        live.fetch_sub(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_LE(max_live.load(), kBound);
  EXPECT_EQ(ac.inflight(), 0);
  EXPECT_GT(ac.admitted(), 0);
  EXPECT_EQ(ac.admitted() + ac.shed(),
            static_cast<int64_t>(kThreads) * kItersPerThread);
}

// ---------------------------------------------------------------------------
// The degradation ladder.

struct LadderRig {
  FrEngine fr{FrOpts()};
  PaEngine pa{PaOpts()};
  double rho = WorkloadRho();

  LadderRig() {
    for (const UpdateEvent& e : Workload()) {
      fr.Apply(e);
      pa.Apply(e);
    }
  }
};

TEST(ResilienceTest, LadderAnswersExactWithinGenerousBudget) {
  LadderRig rig;
  ResilientExecutor exec(&rig.fr, &rig.pa, {.deadline_ms = 1e9});
  const TieredResult result = exec.Query(0, rig.rho, kL);
  EXPECT_EQ(result.tier, AnswerTier::kExact);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.budget_ms, 1e9);
  EXPECT_GE(result.elapsed_ms, 0.0);
  EXPECT_TRUE(result.maybe_region.IsEmpty());
  EXPECT_TRUE(SameRects(result.region, rig.fr.Query(0, rig.rho, kL).region));
}

TEST(ResilienceTest, LadderFallsBackToApproxWhenExactDisabled) {
  LadderRig rig;
  ResilientExecutor exec(&rig.fr, &rig.pa, {.enable_exact = false});
  const TieredResult result = exec.Query(0, rig.rho, kL);
  EXPECT_EQ(result.tier, AnswerTier::kApprox);
  EXPECT_TRUE(SameRects(result.region, rig.pa.Query(0, rig.rho).region));
}

TEST(ResilienceTest, LadderSkipsApproxOnMismatchedL) {
  LadderRig rig;
  ResilientExecutor exec(&rig.fr, &rig.pa, {.enable_exact = false});
  // PA's fixed l is kL; querying another l must not use the approx rung.
  const TieredResult result = exec.Query(0, rig.rho, kL + 5.0);
  EXPECT_EQ(result.tier, AnswerTier::kHistogram);
}

TEST(ResilienceTest, LadderHistogramFloorIsConservative) {
  LadderRig rig;
  ResilientExecutor exec(&rig.fr, &rig.pa,
                         {.enable_exact = false, .enable_approx = false});
  const TieredResult hist = exec.Query(0, rig.rho, kL);
  EXPECT_EQ(hist.tier, AnswerTier::kHistogram);

  const auto exact = rig.fr.Query(0, rig.rho, kL);
  // Pessimistic region: accepted cells only. Filter soundness (Algorithm
  // 1) makes every accepted cell genuinely dense, so the histogram answer
  // never claims density the exact answer lacks (no false accepts)...
  EXPECT_NEAR(RegionDifference(hist.region, exact.region).Area(), 0.0, 1e-9);
  // ...and the optimistic superset conservatively holds every dense point.
  EXPECT_NEAR(RegionDifference(exact.region, hist.maybe_region).Area(), 0.0,
              1e-9);
  EXPECT_GE(hist.maybe_region.Area(), hist.region.Area() - 1e-9);

  // Same bracketing against the brute-force oracle's ground truth, so
  // the conservativeness claim does not lean on the FR engine itself:
  // certainly-dense subset of truth subset of possibly-dense.
  Oracle oracle(kExtent);
  for (const UpdateEvent& e : Workload()) oracle.Apply(e);
  const Region truth = oracle.DenseRegions(0, rig.rho, kL);
  EXPECT_NEAR(RegionDifference(hist.region, truth).Area(), 0.0, 1e-9);
  EXPECT_NEAR(RegionDifference(truth, hist.maybe_region).Area(), 0.0, 1e-9);
}

TEST(ResilienceTest, LadderPreExpiredDeadlineDegradesToHistogram) {
  LadderRig rig;
  ResilientExecutor exec(&rig.fr, &rig.pa, {.deadline_ms = 1e-9});
  const TieredResult result = exec.Query(0, rig.rho, kL);
  // Both deadline-controlled rungs cancel at their entry point; the
  // histogram floor still delivers a conservative answer.
  EXPECT_EQ(result.tier, AnswerTier::kHistogram);
  EXPECT_TRUE(result.timed_out);
  const auto exact = rig.fr.Query(0, rig.rho, kL);
  EXPECT_NEAR(RegionDifference(result.region, exact.region).Area(), 0.0,
              1e-9);
}

TEST(ResilienceTest, LadderWithoutDegradePropagatesCancellation) {
  LadderRig rig;
  ResilientExecutor exec(&rig.fr, &rig.pa,
                         {.deadline_ms = 1e-9, .degrade = false});
  EXPECT_THROW(exec.Query(0, rig.rho, kL), CancelledError);
}

TEST(ResilienceTest, LadderHonorsExternalCancelToken) {
  LadderRig rig;
  ResilientExecutor exec(&rig.fr, &rig.pa, {.deadline_ms = 1e9});
  CancelToken token;
  token.Cancel();
  const TieredResult result = exec.Query(0, rig.rho, kL, &token);
  EXPECT_EQ(result.tier, AnswerTier::kHistogram);
  EXPECT_TRUE(result.timed_out);
}

TEST(ResilienceTest, LadderValidatesHorizonBeforeDegrading) {
  LadderRig rig;
  ResilientExecutor exec(&rig.fr, &rig.pa, {.deadline_ms = 1e9});
  EXPECT_THROW(exec.Query(kHorizon + 1, rig.rho, kL), HorizonError);
}

// ---------------------------------------------------------------------------
// The FFT rung: ladder placement (exact -> fft -> approx -> histogram),
// cancellation at the engine's work boundaries, and reason stamping.

struct FftLadderRig : LadderRig {
  FftDensityEngine fft{{.extent = kExtent, .grid = 64, .horizon = kHorizon}};

  FftLadderRig() {
    for (const UpdateEvent& e : Workload()) fft.Apply(e);
  }
};

TEST(ResilienceTest, LadderPrefersFftOverApproxWhenExactDisabled) {
  FftLadderRig rig;
  // Both the FFT rung and the PA rung could answer (l matches PA's fixed
  // l); the FFT rung must win — it sits directly below exact.
  ResilientExecutor exec(&rig.fr, &rig.pa, {.enable_exact = false},
                         &rig.fft);
  const TieredResult result = exec.Query(0, rig.rho, kL);
  EXPECT_EQ(result.tier, AnswerTier::kFft);
  EXPECT_EQ(result.downgrade_reason, DowngradeReason::kDisabled);
  EXPECT_FALSE(result.timed_out);

  // The documented bound: accepts subset exact subset accepts+candidates.
  const auto exact = rig.fr.Query(0, rig.rho, kL);
  EXPECT_NEAR(RegionDifference(result.region, exact.region).Area(), 0.0,
              1e-9);
  EXPECT_NEAR(RegionDifference(exact.region, result.maybe_region).Area(),
              0.0, 1e-9);
}

TEST(ResilienceTest, LadderFftAnswersForLsThePaRungCannotServe) {
  FftLadderRig rig;
  // PA is pinned to kL; the FFT rung handles any l (kernels are per-l).
  ResilientExecutor exec(&rig.fr, &rig.pa, {.enable_exact = false},
                         &rig.fft);
  const TieredResult result = exec.Query(0, rig.rho, kL + 5.0);
  EXPECT_EQ(result.tier, AnswerTier::kFft);
}

TEST(ResilienceTest, LadderSkipsFftWhenDisabledByPolicy) {
  FftLadderRig rig;
  ResilientExecutor exec(&rig.fr, &rig.pa,
                         {.enable_exact = false, .enable_fft = false},
                         &rig.fft);
  const TieredResult result = exec.Query(0, rig.rho, kL);
  EXPECT_EQ(result.tier, AnswerTier::kApprox);
}

TEST(ResilienceTest, LadderSkipsFftOutsideItsHorizon) {
  FftLadderRig rig;
  FftDensityEngine myopic({.extent = kExtent, .grid = 64, .horizon = 2});
  for (const UpdateEvent& e : Workload()) myopic.Apply(e);
  ResilientExecutor exec(&rig.fr, &rig.pa, {.enable_exact = false},
                         &myopic);
  EXPECT_EQ(exec.Query(2, rig.rho, kL).tier, AnswerTier::kFft);
  // q_t = 5 is inside the FR/PA horizon but beyond the FFT engine's own:
  // the ladder must fall through to the approx rung, not throw.
  EXPECT_EQ(exec.Query(5, rig.rho, kL).tier, AnswerTier::kApprox);
}

TEST(ResilienceTest, LadderDeadlineMissWalksExactFftApproxHistogram) {
  FftLadderRig rig;
  ResilientExecutor exec(&rig.fr, &rig.pa, {.deadline_ms = 1e-9}, &rig.fft);
  const TieredResult result = exec.Query(0, rig.rho, kL);
  // Every deadline-controlled rung cancels at its entry boundary; only
  // the histogram floor (never cancelled) answers. The stage record
  // proves the walk order: the FFT rung ran after exact and before PA.
  EXPECT_EQ(result.tier, AnswerTier::kHistogram);
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.downgrade_reason, DowngradeReason::kDeadline);
  ASSERT_EQ(result.explain.stages.size(), 4u);
  EXPECT_EQ(result.explain.stages[0].name, "exact");
  EXPECT_FALSE(result.explain.stages[0].completed);
  EXPECT_EQ(result.explain.stages[1].name, "fft");
  EXPECT_FALSE(result.explain.stages[1].completed);
  EXPECT_EQ(result.explain.stages[2].name, "approx");
  EXPECT_FALSE(result.explain.stages[2].completed);
  EXPECT_EQ(result.explain.stages[3].name, "histogram");
  EXPECT_TRUE(result.explain.stages[3].completed);
}

TEST(ResilienceTest, LadderFftCancellationWithoutDegradePropagates) {
  FftLadderRig rig;
  ResilientExecutor exec(
      &rig.fr, &rig.pa,
      {.deadline_ms = 1e-9, .degrade = false, .enable_exact = false},
      &rig.fft);
  EXPECT_THROW(exec.Query(0, rig.rho, kL), CancelledError);
}

TEST(ResilienceTest, LadderRecordsFftFieldAndCancellationEvents) {
  FftLadderRig rig;
  FlightRecorder::SetEnabled(true);
  FlightRecorder::Global().Reset();

  ResilientExecutor ok(&rig.fr, &rig.pa, {.enable_exact = false}, &rig.fft);
  ASSERT_EQ(ok.Query(0, rig.rho, kL).tier, AnswerTier::kFft);
  ResilientExecutor expired(&rig.fr, &rig.pa, {.deadline_ms = 1e-9},
                            &rig.fft);
  ASSERT_TRUE(expired.Query(0, rig.rho, kL).timed_out);

  bool saw_enter = false, saw_field = false, saw_cancel = false;
  for (const MicroEvent& e : FlightRecorder::Global().Snapshot()) {
    if (e.kind == FrEvent::kTierEnter &&
        e.a == static_cast<int64_t>(AnswerTier::kFft)) {
      saw_enter = true;
    }
    if (e.kind == FrEvent::kFftField && e.a == 0 && e.b == 64) {
      saw_field = true;
    }
    if (e.kind == FrEvent::kCancelled &&
        e.a == static_cast<int64_t>(AnswerTier::kFft)) {
      saw_cancel = true;
    }
  }
  EXPECT_TRUE(saw_enter);
  EXPECT_TRUE(saw_field);
  EXPECT_TRUE(saw_cancel);
  FlightRecorder::SetEnabled(false);
  FlightRecorder::Global().Reset();
}

// ---------------------------------------------------------------------------
// Transient I/O faults: bounded retry, metrics-visible, never tripping
// crash recovery.

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pdr_resilience_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    dir_ = dir != nullptr ? dir : "/tmp";
  }
  ~TempDir() { std::system(("rm -rf '" + dir_ + "'").c_str()); }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

TEST(ResilienceTest, TransientFaultsAreRetriedAndCounted) {
  const bool was_enabled = PdrObs::Enabled();
  PdrObs::SetEnabled(true);
  Counter& retries =
      MetricsRegistry::Global().GetCounter("pdr.storage.transient_retries");
  const int64_t retries_before = retries.value();

  TempDir dir;
  FaultInjector injector;
  FrEngine::Options opts = FrOpts();
  opts.storage_dir = dir.path();
  opts.fault_injector = &injector;
  const double rho = WorkloadRho();
  Region checkpointed;
  {
    FrEngine fr(opts);
    for (const UpdateEvent& e : Workload()) fr.Apply(e);
    checkpointed = fr.Query(0, rho, kL).region;
    // Fail the next three fault points, then succeed: the checkpoint must
    // complete without surfacing any error.
    injector.ArmTransient(injector.ops_seen(), 3);
    EXPECT_NO_THROW(fr.Checkpoint());
    EXPECT_EQ(injector.transient_fired(), 3);
    EXPECT_FALSE(injector.fired());  // no crash was delivered
  }
  EXPECT_EQ(retries.value(), retries_before + 3);

  // Reopen: normal recovery from a complete checkpoint, no data loss and
  // no crash-recovery path involved.
  injector.DisarmTransient();
  FrEngine recovered(opts);
  EXPECT_TRUE(recovered.recovered());
  EXPECT_TRUE(SameRects(recovered.Query(0, rho, kL).region, checkpointed));
  PdrObs::SetEnabled(was_enabled);
}

TEST(ResilienceTest, PersistentTransientFaultSurfacesAsPlainError) {
  TempDir dir;
  FaultInjector injector;
  FrEngine::Options opts = FrOpts();
  opts.storage_dir = dir.path();
  opts.fault_injector = &injector;
  FrEngine fr(opts);
  for (const UpdateEvent& e : Workload(60)) fr.Apply(e);
  // Every point fails: the retry budget (8) runs out. The error must be a
  // plain runtime_error, NOT CrashError — a persistently failing disk is
  // an operational failure, not a simulated crash.
  injector.ArmTransientEvery(1, 1);
  try {
    fr.Checkpoint();
    FAIL() << "expected the retry budget to run out";
  } catch (const CrashError&) {
    FAIL() << "transient faults must not surface as CrashError";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("transient"), std::string::npos);
  }
  injector.DisarmTransient();
}

// ---------------------------------------------------------------------------
// Monitor integration.

std::vector<UpdateEvent> Convoy(int n) {
  std::vector<UpdateEvent> events;
  Rng rng(71);
  for (ObjectId id = 0; id < static_cast<ObjectId>(n); ++id) {
    const Vec2 p{50 + rng.Uniform(-3, 3), 100 + rng.Uniform(-3, 3)};
    events.push_back({0, id, std::nullopt, MotionState{p, {0, 0}, 0}});
  }
  return events;
}

TEST(ResilienceTest, MonitorStampsTierAndBudget) {
  FrEngine fr(FrOpts());
  for (const UpdateEvent& e : Convoy(30)) fr.Apply(e);
  PdrMonitor::Options opts{.rho = 20.0 / 100.0, .l = 10.0, .lookahead = 0};
  opts.resilience.deadline_ms = 1e9;
  PdrMonitor monitor(&fr, opts);
  const auto delta = monitor.OnTick(0);
  EXPECT_EQ(delta.tier, AnswerTier::kExact);
  EXPECT_FALSE(delta.shed);
  EXPECT_EQ(delta.budget_ms, 1e9);
  EXPECT_GE(delta.elapsed_ms, 0.0);
  EXPECT_FALSE(delta.current.IsEmpty());
}

TEST(ResilienceTest, MonitorShedsTicksWhenControllerIsFull) {
  FrEngine fr(FrOpts());
  for (const UpdateEvent& e : Convoy(30)) fr.Apply(e);
  PdrMonitor monitor(&fr,
                     {.rho = 20.0 / 100.0, .l = 10.0, .lookahead = 0});
  AdmissionController ac({.max_inflight = 1});
  monitor.SetAdmissionController(&ac);

  const auto first = monitor.OnTick(0);
  EXPECT_FALSE(first.shed);
  ASSERT_FALSE(first.current.IsEmpty());

  // Saturate the controller from "another serving thread": the next tick
  // must shed — repeating the previous answer with empty deltas — and the
  // standing state must not advance.
  auto held = ac.TryAdmit();
  ASSERT_TRUE(held.ok());
  fr.AdvanceTo(1);
  const auto shed = monitor.OnTick(1);
  EXPECT_TRUE(shed.shed);
  EXPECT_EQ(shed.tier, AnswerTier::kShed);
  EXPECT_TRUE(SameRects(shed.current, first.current));
  EXPECT_TRUE(shed.appeared.IsEmpty());
  EXPECT_TRUE(shed.vanished.IsEmpty());
  EXPECT_EQ(ac.shed(), 1);

  held.Release();
  fr.AdvanceTo(2);
  const auto resumed = monitor.OnTick(2);
  EXPECT_FALSE(resumed.shed);
  EXPECT_EQ(resumed.tier, AnswerTier::kExact);
  // The stationary convoy did not move: no spurious deltas after a shed.
  EXPECT_TRUE(resumed.appeared.IsEmpty());
  EXPECT_TRUE(resumed.vanished.IsEmpty());
}

TEST(ResilienceTest, MonitorOffersDegradedAnswersToTheAuditor) {
  const bool was_enabled = PdrObs::Enabled();
  PdrObs::SetEnabled(true);  // the audit sampler is gated on observability
  FrEngine fr(FrOpts());
  Oracle oracle(kExtent);
  for (const UpdateEvent& e : Convoy(30)) {
    fr.Apply(e);
    oracle.Apply(e);
  }
  ShadowAuditor auditor(&fr, &oracle, {.sample_rate = 1.0, .l = 10.0});
  PdrMonitor::Options opts{.rho = 20.0 / 100.0, .l = 10.0, .lookahead = 0};
  opts.resilience.enable_exact = false;   // pin a degraded tier
  opts.resilience.enable_approx = false;  // (no fallback PA either way)
  PdrMonitor monitor(&fr, opts);
  monitor.SetAuditor(&auditor);
  const auto delta = monitor.OnTick(0);
  EXPECT_EQ(delta.tier, AnswerTier::kHistogram);
  ASSERT_TRUE(delta.audit.has_value());
  // The histogram tier is pessimistic: whatever it claims dense is dense.
  EXPECT_GE(delta.audit->precision, 1.0 - 1e-9);
  PdrObs::SetEnabled(was_enabled);
}

TEST(ResilienceTest, MonitorFftRungAnswersTheStandingQuery) {
  FrEngine fr(FrOpts());
  // grid=128 keeps the conservative window (half-width 2, ~7.8 units) wide
  // enough to certify the convoy's core at l=10; at grid=64 the window
  // degenerates to one cell and the subset is legitimately empty.
  FftDensityEngine fft({.extent = kExtent, .grid = 128, .horizon = kHorizon});
  for (const UpdateEvent& e : Convoy(30)) {
    fr.Apply(e);
    fft.Apply(e);
  }
  PdrMonitor::Options opts{.rho = 20.0 / 100.0, .l = 10.0, .lookahead = 0};
  opts.resilience.enable_exact = false;  // pin the fft rung
  PdrMonitor monitor(&fr, opts);
  monitor.SetFftRung(&fft);
  const auto delta = monitor.OnTick(0);
  EXPECT_EQ(delta.tier, AnswerTier::kFft);
  EXPECT_EQ(delta.downgrade_reason, DowngradeReason::kDisabled);
  EXPECT_FALSE(delta.current.IsEmpty());
  // The optimistic superset rides along on the delta for fft answers.
  const auto exact = fr.Query(0, opts.rho, opts.l);
  EXPECT_NEAR(RegionDifference(delta.current, exact.region).Area(), 0.0,
              1e-9);
  EXPECT_NEAR(RegionDifference(exact.region, delta.maybe_region).Area(), 0.0,
              1e-9);
}

TEST(ResilienceTest, MonitorQueryBatchAmortizesOneFieldPerTargetTick) {
  FrEngine fr(FrOpts());
  FftDensityEngine fft({.extent = kExtent, .grid = 64, .horizon = kHorizon});
  for (const UpdateEvent& e : Workload()) {
    fr.Apply(e);
    fft.Apply(e);
  }
  PdrMonitor::Options opts{.rho = WorkloadRho(), .l = kL, .lookahead = 0};
  opts.resilience.enable_exact = false;
  PdrMonitor monitor(&fr, opts);
  monitor.SetFftRung(&fft);

  Counter& built =
      MetricsRegistry::Global().GetCounter("pdr.fft.fields_built");
  const int64_t built_before = built.value();

  // Eight specs over two distinct target ticks: exactly two transforms.
  std::vector<PdrMonitor::BatchQuerySpec> specs;
  for (int i = 0; i < 6; ++i) {
    specs.push_back({WorkloadRho() * (0.5 + 0.3 * i), kL + i, /*lookahead=*/0});
  }
  specs.push_back({WorkloadRho(), kL, /*lookahead=*/2});
  specs.push_back({WorkloadRho() * 2.0, kL + 3.0, /*lookahead=*/2});

  const std::vector<TieredResult> results = monitor.QueryBatch(0, specs);
  ASSERT_EQ(results.size(), specs.size());
  EXPECT_EQ(built.value(), built_before + 2);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].tier, AnswerTier::kFft) << "i=" << i;
    EXPECT_EQ(results[i].explain.q_t,
              static_cast<Tick>(specs[i].lookahead))
        << "i=" << i;
  }
}

TEST(ResilienceTest, MonitorQueryBatchWithoutLadderAnswersExact) {
  FrEngine fr(FrOpts());
  for (const UpdateEvent& e : Workload()) fr.Apply(e);
  PdrMonitor monitor(&fr, {.rho = WorkloadRho(), .l = kL, .lookahead = 0});
  const std::vector<PdrMonitor::BatchQuerySpec> specs = {
      {WorkloadRho(), kL, 0}, {WorkloadRho() * 2.0, kL - 5.0, 1}};
  const auto results = monitor.QueryBatch(0, specs);
  ASSERT_EQ(results.size(), 2u);
  for (const TieredResult& r : results) {
    EXPECT_EQ(r.tier, AnswerTier::kExact);
    EXPECT_EQ(r.explain.stages.size(), 2u);
  }
  EXPECT_TRUE(SameRects(results[0].region,
                        fr.Query(0, WorkloadRho(), kL).region));
}

TEST(ResilienceTest, MonitorLadderRequiresFrPrimary) {
  PaEngine pa(PaOpts());
  for (const UpdateEvent& e : Workload()) pa.Apply(e);
  PdrMonitor::Options opts{.rho = WorkloadRho(), .l = kL, .lookahead = 0};
  opts.resilience.deadline_ms = 10.0;
  PdrMonitor monitor(&pa, opts);
  EXPECT_THROW(monitor.OnTick(0), std::logic_error);
}

}  // namespace
}  // namespace pdr
