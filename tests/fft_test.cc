// Differential battery for the FFT whole-plane density engine.
//
// Two oracles pin the engine down from opposite sides:
//
//   * numeric: SpectralBlockSums must reproduce the direct O(m^2)
//     prefix-sum convolution *bit for bit* — raster counts and the box
//     kernel are integers, so the exact convolution is integer-valued and
//     rounding is lossless while the FFT residual stays below 0.5. Every
//     grid this file touches asserts both the equality and the residual
//     headroom.
//   * semantic: across 200 seeded scenarios the engine's accept region
//     must be a subset of the exact FR answer and its accepts+candidates
//     superset must contain it (the documented sandwich, DESIGN.md §15).
//     Containment is asserted by area (the closed-top/right raster edge
//     vs. the report grid's half-open edge differ on a measure-zero set).
//     Failures shrink: the object count is halved while the scenario
//     still fails, and the minimal size is reported with the seed.
//
// tests/fft_metamorphic_test.cc holds the invariance battery
// (translation / reflection / mass / monotonicity / edge-exact
// placements); tests/differential_test.cc runs the ladder's FFT rung
// against exact FR across thread counts.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <string>
#include <vector>

#include "pdr/common/random.h"
#include "pdr/common/region.h"
#include "pdr/core/fr_engine.h"
#include "pdr/fft/fft.h"
#include "pdr/fft/fft_engine.h"
#include "pdr/fft/raster.h"
#include "pdr/mobility/generator.h"
#include "pdr/obs/obs.h"
#include "pdr/resilience/deadline.h"

namespace pdr {
namespace {

constexpr double kExtent = 200.0;

// ---------------------------------------------------------------------------
// Numeric layer: transform round trips.

TEST(FftTest, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1);
  EXPECT_EQ(NextPow2(2), 2);
  EXPECT_EQ(NextPow2(3), 4);
  EXPECT_EQ(NextPow2(16), 16);
  EXPECT_EQ(NextPow2(17), 32);
  EXPECT_EQ(NextPow2(255), 256);
}

TEST(FftTest, ForwardInverseRoundTripIsNearExact) {
  Rng rng(11);
  for (int n : {2, 8, 64, 256}) {
    std::vector<std::complex<double>> a(n);
    for (auto& z : a) z = {rng.Uniform(-5.0, 5.0), rng.Uniform(-5.0, 5.0)};
    std::vector<std::complex<double>> b = a;
    Fft(b, /*inverse=*/false);
    Fft(b, /*inverse=*/true);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(a[i].real(), b[i].real(), 1e-10) << "n=" << n;
      EXPECT_NEAR(a[i].imag(), b[i].imag(), 1e-10) << "n=" << n;
    }
  }
}

TEST(FftTest, ForwardReal2DMatchesFullComplexTransform) {
  Rng rng(12);
  const int m = 12;
  const int M = 32;
  std::vector<double> img(m * m);
  for (double& v : img) v = std::floor(rng.Uniform(0.0, 9.0));

  const std::vector<std::complex<double>> packed = ForwardReal2D(img, m, M);

  std::vector<std::complex<double>> direct(M * M, {0.0, 0.0});
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < m; ++c) direct[r * M + c] = img[r * m + c];
  }
  Fft2D(direct, M, /*inverse=*/false);

  ASSERT_EQ(packed.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(packed[i].real(), direct[i].real(), 1e-9) << "i=" << i;
    EXPECT_NEAR(packed[i].imag(), direct[i].imag(), 1e-9) << "i=" << i;
  }
}

TEST(FftTest, BoxKernelSpectrumMatchesTransformOfBoxImage) {
  const int M = 32;
  for (int h : {0, 1, 3, 7}) {
    const std::vector<std::complex<double>> analytic = BoxKernelSpectrum(h, M);
    // The centered box on the torus: offsets -h..h wrap to M-h..M-1.
    std::vector<std::complex<double>> image(M * M, {0.0, 0.0});
    for (int dy = -h; dy <= h; ++dy) {
      for (int dx = -h; dx <= h; ++dx) {
        image[((dy + M) % M) * M + ((dx + M) % M)] = 1.0;
      }
    }
    Fft2D(image, M, /*inverse=*/false);
    for (size_t i = 0; i < image.size(); ++i) {
      EXPECT_NEAR(analytic[i].real(), image[i].real(), 1e-8) << "h=" << h;
      // The analytic spectrum is exactly real (Dirichlet product).
      EXPECT_EQ(analytic[i].imag(), 0.0);
      EXPECT_NEAR(image[i].imag(), 0.0, 1e-8) << "h=" << h;
    }
  }
}

// ---------------------------------------------------------------------------
// The bit-for-bit differential: spectral block sums vs. direct integer
// convolution on small grids, including a non-power-of-two m.

TEST(FftTest, SpectralBlockSumsBitIdenticalToDirectConvolution) {
  Rng rng(13);
  for (int m : {8, 16, 33}) {
    const int M = NextPow2(2 * m);
    std::vector<double> counts(m * m);
    for (double& c : counts) c = std::floor(rng.Uniform(0.0, 50.0));
    const std::vector<std::complex<double>> spectrum =
        ForwardReal2D(counts, m, M);
    for (int h : {0, 1, 2, 5, m - 1}) {
      double residual = -1.0;
      const std::vector<int64_t> spectral =
          SpectralBlockSums(spectrum, BoxKernelSpectrum(h, M), M, m,
                            &residual);
      const std::vector<int64_t> direct = DirectBlockSums(counts, m, h);
      ASSERT_EQ(spectral.size(), direct.size());
      for (size_t i = 0; i < direct.size(); ++i) {
        ASSERT_EQ(spectral[i], direct[i])
            << "m=" << m << " h=" << h << " cell=" << i;
      }
      // The rounding margin must not be anywhere near exhausted.
      EXPECT_GE(residual, 0.0) << "m=" << m << " h=" << h;
      EXPECT_LT(residual, 1e-6) << "m=" << m << " h=" << h;
    }
  }
}

TEST(FftTest, SpectralBlockSumsExactForSinglePointMass) {
  const int m = 16;
  const int M = NextPow2(2 * m);
  std::vector<double> counts(m * m, 0.0);
  counts[5 * m + 9] = 7.0;
  const auto spectrum = ForwardReal2D(counts, m, M);
  const int h = 2;
  const auto sums = SpectralBlockSums(spectrum, BoxKernelSpectrum(h, M), M, m);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < m; ++c) {
      const bool inside = std::abs(r - 5) <= h && std::abs(c - 9) <= h;
      EXPECT_EQ(sums[r * m + c], inside ? 7 : 0) << "r=" << r << " c=" << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Rasterization binning (closed top/right, open left/bottom).

TEST(FftTest, RasterGridBinsClosedTopRight) {
  const RasterGrid grid(200.0, 40);  // g = 5
  // A coordinate exactly on a cell boundary belongs to the cell *below*.
  EXPECT_EQ(grid.ColOf(5.0), 0);
  EXPECT_EQ(grid.ColOf(5.0 + 1e-9), 1);
  EXPECT_EQ(grid.ColOf(100.0), 19);
  EXPECT_EQ(grid.ColOf(100.0 + 1e-9), 20);
  // Domain edges: x = 0 is clamped into cell 0, x = extent lands in m-1.
  EXPECT_EQ(grid.ColOf(0.0), 0);
  EXPECT_EQ(grid.ColOf(200.0), 39);
}

TEST(FftTest, RasterHalfWidthsCloseWithoutSlackCell) {
  const RasterGrid grid(200.0, 40);  // g = 5
  // l = 20: l/(2g) = 2 exactly -> a = 1, b = 2 (no "+1" slack).
  EXPECT_EQ(grid.ConservativeHalfWidth(20.0), 1);
  EXPECT_EQ(grid.ExpansiveHalfWidth(20.0), 2);
  // l = 22: l/(2g) = 2.2 -> a = 1, b = 3.
  EXPECT_EQ(grid.ConservativeHalfWidth(22.0), 1);
  EXPECT_EQ(grid.ExpansiveHalfWidth(22.0), 3);
  // l below one cell: no accept possible.
  EXPECT_LT(grid.ConservativeHalfWidth(4.0), 0);
}

TEST(FftTest, RasterizeDropsOutOfDomainAndCountsMass) {
  const RasterGrid grid(100.0, 10);
  const std::vector<Vec2> positions = {
      {5.0, 5.0},   {5.0, 5.0},    {100.0, 100.0}, {0.0, 0.0},
      {-1.0, 50.0}, {50.0, 101.0}, {30.0, 30.0},
  };
  const std::vector<double> counts = RasterizeCounts(grid, positions);
  double mass = 0.0;
  for (double c : counts) mass += c;
  EXPECT_EQ(mass, 5.0);  // the two out-of-domain points are dropped
  EXPECT_EQ(counts[0 * 10 + 0], 3.0);  // (5,5) x2 and the clamped (0,0)
  EXPECT_EQ(counts[9 * 10 + 9], 1.0);  // (100,100) in the top cell
  EXPECT_EQ(counts[2 * 10 + 2], 1.0);  // (30,30) on the (20,30] boundary
}

// ---------------------------------------------------------------------------
// Engine sandwich vs. exact FR across 200 seeded scenarios, with
// shrink-on-failure.

struct Scenario {
  uint64_t seed = 0;
  int objects = 0;
  bool clustered = false;
  int clusters = 1;
  double rho = 0.0;
  double l = 20.0;
  Tick q_t = 0;
};

Scenario MakeScenario(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  Scenario s;
  s.seed = seed;
  s.objects = static_cast<int>(rng.UniformInt(40, 250));
  s.clustered = rng.NextDouble() < 0.5;
  s.clusters = static_cast<int>(rng.UniformInt(1, 4));
  s.l = rng.Uniform(12.0, 30.0);
  s.rho = rng.Uniform(0.5, 8.0) * s.objects / (kExtent * kExtent);
  s.q_t = static_cast<Tick>(rng.UniformInt(0, 5));
  return s;
}

std::vector<UpdateEvent> ScenarioWorkload(const Scenario& s, int objects) {
  return s.clustered
             ? MakeClusteredInserts(objects, s.clusters, kExtent, 8.0, 0.3,
                                    s.seed)
             : MakeUniformInserts(objects, kExtent, 1.5, s.seed);
}

// One scenario at one size; false (with a reason) when the sandwich or
// the roundoff contract breaks.
bool RunSandwichScenario(const Scenario& s, int objects, std::string* why) {
  FrEngine fr({.extent = kExtent,
               .histogram_side = 16,
               .horizon = 20,
               .buffer_pages = 64});
  FftDensityEngine fft({.extent = kExtent, .grid = 64, .horizon = 20});
  for (const UpdateEvent& e : ScenarioWorkload(s, objects)) {
    fr.Apply(e);
    fft.Apply(e);
  }

  const Region exact = fr.Query(s.q_t, s.rho, s.l).region;
  FftDensityEngine::QueryResult got;
  try {
    got = fft.Query(s.q_t, s.rho, s.l);
  } catch (const FftRoundoffError& e) {
    *why = std::string("roundoff contract broken: ") + e.what();
    return false;
  }

  const double below = RegionDifference(got.region, exact).Area();
  if (below > 1e-6) {
    *why = "accept region escapes exact FR by area " + std::to_string(below);
    return false;
  }
  const double above = RegionDifference(exact, got.maybe_region).Area();
  if (above > 1e-6) {
    *why = "exact FR escapes maybe region by area " + std::to_string(above);
    return false;
  }
  if (got.maybe_region.Area() < got.region.Area() - 1e-9) {
    *why = "maybe region smaller than accept region";
    return false;
  }
  if (got.accepted_cells + got.rejected_cells + got.candidate_cells !=
      64LL * 64LL) {
    *why = "cell classes do not partition the grid";
    return false;
  }
  return true;
}

void ShrinkAndFail(const Scenario& s, const std::string& first_why) {
  int failing = s.objects;
  std::string why = first_why;
  while (failing > 1) {
    const int half = failing / 2;
    std::string half_why;
    if (RunSandwichScenario(s, half, &half_why)) break;
    failing = half;
    why = half_why;
  }
  ADD_FAILURE() << "seed=" << s.seed << " objects=" << failing
                << " (shrunk from " << s.objects << ") rho=" << s.rho
                << " l=" << s.l << " q_t=" << s.q_t
                << (s.clustered ? " clustered" : " uniform") << ": " << why;
}

TEST(FftTest, SandwichesExactFrAcross200Seeds) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario s = MakeScenario(seed);
    std::string why;
    if (!RunSandwichScenario(s, s.objects, &why)) ShrinkAndFail(s, why);
  }
}

// ---------------------------------------------------------------------------
// Engine mechanics: caching, batch amortization, cancellation, horizon.

std::vector<UpdateEvent> SmallWorkload() {
  return MakeClusteredInserts(120, 2, kExtent, 8.0, 0.3, /*seed=*/5);
}

TEST(FftTest, FieldCacheAmortizesQueriesOnOneTick) {
  FftDensityEngine fft({.extent = kExtent, .grid = 64, .horizon = 20});
  for (const UpdateEvent& e : SmallWorkload()) fft.Apply(e);

  Counter& built =
      MetricsRegistry::Global().GetCounter("pdr.fft.fields_built");
  const int64_t built_before = built.value();

  std::vector<FftDensityEngine::BatchQuery> batch;
  for (int i = 1; i <= 8; ++i) {
    batch.push_back({i * 10.0 / (kExtent * kExtent), 20.0 + i});
  }
  const auto results = fft.QueryBatch(3, batch);
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(built.value(), built_before + 1);  // one transform for all 8
  EXPECT_FALSE(results.front().field_cached);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].field_cached) << "i=" << i;
    EXPECT_EQ(results[i].field_ms, 0.0) << "i=" << i;
  }

  // A different q_t is a different field.
  fft.Query(4, batch.front().rho, batch.front().l);
  EXPECT_EQ(built.value(), built_before + 2);
}

TEST(FftTest, ApplyInvalidatesCachedFields) {
  FftDensityEngine fft({.extent = kExtent, .grid = 32, .horizon = 20});
  for (const UpdateEvent& e : SmallWorkload()) fft.Apply(e);
  const int64_t mass_before = fft.FieldMass(0);
  EXPECT_EQ(mass_before, 120);

  // A new insert must invalidate the cached field, not serve stale mass.
  fft.Apply({0, 9999, std::nullopt, MotionState{{50.0, 50.0}, {0, 0}, 0}});
  EXPECT_EQ(fft.FieldMass(0), mass_before + 1);
}

TEST(FftTest, AdvanceToPrunesFieldsBehindTheClock) {
  FftDensityEngine fft({.extent = kExtent, .grid = 32, .horizon = 20});
  for (const UpdateEvent& e : SmallWorkload()) fft.Apply(e);
  Counter& built =
      MetricsRegistry::Global().GetCounter("pdr.fft.fields_built");
  fft.Query(0, 0.003, 20.0);
  fft.Query(5, 0.003, 20.0);
  const int64_t built_before = built.value();
  fft.AdvanceTo(5);
  // Tick 5's field survives the advance; tick 0's is gone (and can no
  // longer be queried anyway).
  fft.Query(5, 0.004, 22.0);
  EXPECT_EQ(built.value(), built_before);
}

TEST(FftTest, CancellationAtWorkBoundariesLeavesNoPartialState) {
  FftDensityEngine fft({.extent = kExtent, .grid = 64, .horizon = 20});
  for (const UpdateEvent& e : SmallWorkload()) fft.Apply(e);

  CancelToken token;
  token.Cancel();
  QueryControl ctl;
  ctl.token = &token;
  EXPECT_THROW(fft.Query(0, 0.003, 20.0, ctl), CancelledError);

  QueryControl expired;
  expired.deadline = Deadline::After(0.0);
  EXPECT_THROW(fft.Query(0, 0.003, 20.0, expired), CancelledError);

  // The cancelled builds left no partial cache entry: the next uncontrolled
  // query builds the field from scratch and answers normally.
  Counter& built =
      MetricsRegistry::Global().GetCounter("pdr.fft.fields_built");
  const int64_t built_before = built.value();
  const auto ok = fft.Query(0, 0.003, 20.0);
  EXPECT_EQ(built.value(), built_before + 1);
  EXPECT_FALSE(ok.field_cached);
}

TEST(FftTest, GenerousControlIsBitIdenticalToNoControl) {
  FftDensityEngine a({.extent = kExtent, .grid = 64, .horizon = 20});
  FftDensityEngine b({.extent = kExtent, .grid = 64, .horizon = 20});
  for (const UpdateEvent& e : SmallWorkload()) {
    a.Apply(e);
    b.Apply(e);
  }
  QueryControl generous;
  generous.deadline = Deadline::After(1e9);
  const auto plain = a.Query(2, 0.004, 24.0);
  const auto controlled = b.Query(2, 0.004, 24.0, generous);
  EXPECT_EQ(plain.accepted_cells, controlled.accepted_cells);
  EXPECT_EQ(plain.rejected_cells, controlled.rejected_cells);
  EXPECT_EQ(plain.candidate_cells, controlled.candidate_cells);
  EXPECT_EQ(RegionDifference(plain.region, controlled.region).Area(), 0.0);
  EXPECT_EQ(RegionDifference(controlled.region, plain.region).Area(), 0.0);
}

TEST(FftTest, QueryOutsideHorizonThrowsHorizonError) {
  FftDensityEngine fft({.extent = kExtent, .grid = 32, .horizon = 20});
  for (const UpdateEvent& e : SmallWorkload()) fft.Apply(e);
  fft.AdvanceTo(5);
  EXPECT_NO_THROW(fft.Query(5, 0.003, 20.0));
  EXPECT_NO_THROW(fft.Query(25, 0.003, 20.0));
  EXPECT_THROW(fft.Query(4, 0.003, 20.0), HorizonError);
  EXPECT_THROW(fft.Query(26, 0.003, 20.0), HorizonError);
}

TEST(FftTest, PredictedMotionMovesTheField) {
  FftDensityEngine fft({.extent = kExtent, .grid = 40, .horizon = 20});
  // One object moving right at 10 per tick from x = 20.
  fft.Apply({0, 1, std::nullopt, MotionState{{20.0, 100.0}, {10.0, 0.0}, 0}});
  const RasterGrid& grid = fft.raster();  // g = 5
  const auto at0 = fft.BlockSums(0, 0);
  const auto at4 = fft.BlockSums(4, 0);
  const int row = grid.RowOf(100.0);
  EXPECT_EQ(at0[row * 40 + grid.ColOf(20.0)], 1);
  EXPECT_EQ(at4[row * 40 + grid.ColOf(20.0)], 0);
  EXPECT_EQ(at4[row * 40 + grid.ColOf(60.0)], 1);
}

}  // namespace
}  // namespace pdr
