#include "pdr/bx/bx_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "pdr/common/random.h"
#include "pdr/mobility/generator.h"

namespace pdr {
namespace {

BxTree::Options SmallOptions() {
  return {.buffer_pages = 256, .extent = 1000.0, .max_update_interval = 20,
          .max_scan_intervals = 128};
}

std::vector<std::pair<ObjectId, MotionState>> BruteRange(
    const std::map<ObjectId, MotionState>& objects, const Rect& window,
    Tick t) {
  std::vector<std::pair<ObjectId, MotionState>> out;
  for (const auto& [id, state] : objects) {
    if (window.ContainsClosed(state.PositionAt(t))) out.emplace_back(id, state);
  }
  return out;
}

void ExpectSameIds(std::vector<std::pair<ObjectId, MotionState>> got,
                   std::vector<std::pair<ObjectId, MotionState>> want) {
  auto key = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(got.begin(), got.end(), key);
  std::sort(want.begin(), want.end(), key);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first);
    EXPECT_EQ(got[i].second, want[i].second);
  }
}

TEST(BxTreeTest, EmptyTree) {
  BxTree tree(SmallOptions());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.RangeQuery(Rect(0, 0, 1000, 1000), 0).empty());
  EXPECT_FALSE(tree.Delete(1));
}

TEST(BxTreeTest, KeyEmbedsPartitionAndObject) {
  BxTree tree(SmallOptions());
  const MotionState s0{{100, 100}, {0, 0}, 0};   // partition 0
  const MotionState s1{{100, 100}, {0, 0}, 10};  // partition 1 (span 10)
  EXPECT_EQ(tree.phase_span(), 10);
  const uint64_t k0 = tree.KeyFor(1, s0);
  const uint64_t k1 = tree.KeyFor(1, s1);
  EXPECT_NE(k0, k1);  // different partitions
  EXPECT_NE(tree.KeyFor(1, s0), tree.KeyFor(2, s0));  // different objects
  // Same state, same id => deterministic key.
  EXPECT_EQ(tree.KeyFor(1, s0), tree.KeyFor(1, s0));
}

TEST(BxTreeTest, SingleObjectFoundAtPredictedPosition) {
  BxTree tree(SmallOptions());
  tree.Insert(1, {{500, 500}, {1, -1}, 0});
  const auto hit = tree.RangeQuery(Rect(509, 489, 511, 491), 10);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].first, 1u);
  EXPECT_TRUE(tree.RangeQuery(Rect(499, 499, 501, 501), 10).empty());
}

TEST(BxTreeTest, MatchesBruteForceOnUniformWorkload) {
  BxTree tree(SmallOptions());
  std::map<ObjectId, MotionState> reference;
  for (const UpdateEvent& e : MakeUniformInserts(3000, 1000.0, 1.5, 111)) {
    tree.Insert(e.id, *e.new_state);
    reference[e.id] = *e.new_state;
  }
  Rng rng(112);
  for (Tick t : {0, 7, 15, 20}) {
    for (int q = 0; q < 8; ++q) {
      const double x = rng.Uniform(-50, 950);
      const double y = rng.Uniform(-50, 950);
      const Rect window(x, y, x + rng.Uniform(20, 150),
                        y + rng.Uniform(20, 150));
      ExpectSameIds(tree.RangeQuery(window, t),
                    BruteRange(reference, window, t));
    }
  }
}

TEST(BxTreeTest, MixedPartitionsStayConsistent) {
  // Objects updated at different ticks land in different partitions; the
  // query must merge them all correctly.
  BxTree tree(SmallOptions());
  std::map<ObjectId, MotionState> reference;
  Rng rng(113);
  ObjectId next = 0;
  for (Tick now : {0, 5, 10, 15, 20}) {
    tree.AdvanceTo(now);
    for (int i = 0; i < 400; ++i) {
      const MotionState s{{rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
                          {rng.Uniform(-1.5, 1.5), rng.Uniform(-1.5, 1.5)},
                          now};
      tree.Insert(next, s);
      reference[next] = s;
      ++next;
    }
    // Update some older objects into the current partition.
    std::vector<ObjectId> ids;
    for (const auto& [id, s] : reference) {
      (void)s;
      ids.push_back(id);
    }
    for (int i = 0; i < 150; ++i) {
      const ObjectId id = ids[rng.UniformInt(0, ids.size() - 1)];
      const MotionState fresh{{rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
                              {rng.Uniform(-1.5, 1.5), rng.Uniform(-1.5, 1.5)},
                              now};
      tree.Apply({now, id, reference[id], fresh});
      reference[id] = fresh;
    }
    for (int q = 0; q < 6; ++q) {
      const double x = rng.Uniform(0, 800);
      const double y = rng.Uniform(0, 800);
      const Rect window(x, y, x + 150, y + 150);
      const Tick t = now + static_cast<Tick>(rng.UniformInt(0, 10));
      ExpectSameIds(tree.RangeQuery(window, t),
                    BruteRange(reference, window, t));
    }
  }
  tree.btree().CheckInvariants();
}

TEST(BxTreeTest, FindsObjectsPredictedOutsideThenInside) {
  // An object whose label-time position is outside the domain (clamped
  // key) must still be found when its query-time position is inside.
  BxTree tree(SmallOptions());
  // At t_ref=0 (partition 0, label 10) it sits at x = 1040 (outside);
  // moving left it re-enters and is at x = 960 at t = 20? Reverse: place
  // it so label position is outside but query position inside.
  const MotionState s{{995, 500}, {1.6, 0}, 0};  // at label(10): x=1011
  tree.Insert(7, s);
  // Query at t=2: position (998.2, 500).
  const auto hit = tree.RangeQuery(Rect(990, 490, 1000, 510), 2);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].first, 7u);
}

TEST(BxTreeTest, DeleteRemovesExactlyOne) {
  BxTree tree(SmallOptions());
  for (const UpdateEvent& e : MakeUniformInserts(500, 1000.0, 1.0, 114)) {
    tree.Insert(e.id, *e.new_state);
  }
  EXPECT_TRUE(tree.Delete(123));
  EXPECT_FALSE(tree.Delete(123));
  EXPECT_EQ(tree.size(), 499u);
  const auto all = tree.RangeQuery(Rect(-100, -100, 1100, 1100), 0);
  EXPECT_EQ(all.size(), 499u);
}

TEST(BxTreeTest, IoStatsAndColdQueries) {
  BxTree tree(SmallOptions());
  for (const UpdateEvent& e : MakeUniformInserts(20000, 1000.0, 1.0, 115)) {
    tree.Insert(e.id, *e.new_state);
  }
  tree.DropCaches();
  tree.ResetIoStats();
  const auto small = tree.RangeQuery(Rect(100, 100, 130, 130), 5);
  const int64_t small_reads = tree.io_stats().physical_reads;
  EXPECT_GT(small_reads, 0);
  tree.DropCaches();
  tree.ResetIoStats();
  (void)tree.RangeQuery(Rect(0, 0, 1000, 1000), 5);
  EXPECT_GT(tree.io_stats().physical_reads, small_reads);
  (void)small;
}

TEST(BxTreeTest, UpdateStreamFromSimulator) {
  WorkloadConfig config;
  config.WithExtent(1000.0);
  config.num_objects = 800;
  config.max_update_interval = 20;
  config.network.grid_nodes = 10;
  config.seed = 116;
  TripSimulator sim(config);
  BxTree tree(SmallOptions());
  std::map<ObjectId, MotionState> reference;
  for (const UpdateEvent& e : sim.Bootstrap()) {
    tree.Apply(e);
    reference[e.id] = *e.new_state;
  }
  for (Tick now = 1; now <= 30; ++now) {
    tree.AdvanceTo(now);
    for (const UpdateEvent& e : sim.Advance(now)) {
      tree.Apply(e);
      reference[e.id] = *e.new_state;
    }
  }
  EXPECT_EQ(tree.size(), 800u);
  Rng rng(117);
  for (int q = 0; q < 10; ++q) {
    const double x = rng.Uniform(0, 850);
    const double y = rng.Uniform(0, 850);
    const Rect window(x, y, x + 120, y + 120);
    const Tick t = 30 + static_cast<Tick>(rng.UniformInt(0, 10));
    ExpectSameIds(tree.RangeQuery(window, t),
                  BruteRange(reference, window, t));
  }
}

}  // namespace
}  // namespace pdr
