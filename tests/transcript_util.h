// Hexfloat query transcripts: serialize a suite of FR answers so two
// engine states can be compared for *bit-identical* behavior. Shared by
// the determinism tests (parallel vs serial execution) and the crash
// recovery tests (recovered store vs never-crashed run).
//
// A transcript covers everything except timing and physical reads: region
// rectangle bits, filter counts, sweep counters, logical I/O. (Physical
// reads depend on buffer-pool history — which frames survived — so two
// states that answer identically may still differ there; they are
// deliberately excluded, as in determinism_test.cc.)

#ifndef PDR_TESTS_TRANSCRIPT_UTIL_H_
#define PDR_TESTS_TRANSCRIPT_UTIL_H_

#include <sstream>
#include <string>

#include "pdr/common/region.h"
#include "pdr/core/fr_engine.h"

namespace pdr {
namespace test_util {

inline void AppendRegion(const Region& region, std::ostringstream* os) {
  *os << region.size();
  // Hexfloat preserves the exact bit patterns: any numeric divergence,
  // however small, must change the transcript.
  for (const Rect& r : region.rects()) {
    *os << ' ' << std::hexfloat << r.x_lo << ',' << r.y_lo << ',' << r.x_hi
        << ',' << r.y_hi << std::defaultfloat;
  }
  *os << '\n';
}

inline void AppendFrQuery(FrEngine* fr, Tick q_t, double rho, double l,
                          std::ostringstream* os) {
  const auto r = fr->Query(q_t, rho, l);
  *os << "q_t=" << q_t << " rho=" << std::hexfloat << rho << std::defaultfloat
      << " cells=" << r.accepted_cells << '/' << r.candidate_cells << '/'
      << r.rejected_cells << " fetched=" << r.objects_fetched
      << " sweep=" << r.sweep.x_strips << '/' << r.sweep.y_sweeps << '/'
      << r.sweep.y_strips << '/' << r.sweep.dense_rects
      << " logical=" << r.cost.io.logical_reads << " region=";
  AppendRegion(r.region, os);
}

/// A seeded FR query suite relative to the engine's current clock: a grid
/// of density thresholds x query ticks `now + dt`. Two engines produce
/// equal transcripts iff they hold the same logical state (same clock,
/// histogram bits, and indexed objects).
inline std::string FrSuiteTranscript(FrEngine* fr, double base_rho,
                                     double l) {
  std::ostringstream os;
  os << "now=" << fr->now() << '\n';
  for (double rho_scale : {0.5, 1.0, 2.0}) {
    for (Tick dt : {Tick{0}, Tick{3}, Tick{7}}) {
      AppendFrQuery(fr, fr->now() + dt, rho_scale * base_rho, l, &os);
    }
  }
  return os.str();
}

}  // namespace test_util
}  // namespace pdr

#endif  // PDR_TESTS_TRANSCRIPT_UTIL_H_
