#include "pdr/core/oracle.h"

#include <gtest/gtest.h>

#include "pdr/common/random.h"
#include "pdr/mobility/generator.h"

namespace pdr {
namespace {

UpdateEvent InsertAt(ObjectId id, double x, double y, double vx = 0,
                     double vy = 0, Tick t = 0) {
  return {t, id, std::nullopt, MotionState{{x, y}, {vx, vy}, t}};
}

TEST(OracleTest, CountInSquareEdgeSemantics) {
  Oracle oracle(100.0);
  oracle.Apply(InsertAt(0, 50, 50));
  // Right/top edges included, left/bottom excluded (Definition 1).
  EXPECT_EQ(oracle.CountInSquare(0, {45, 50}, 10.0), 1);  // obj on right edge
  EXPECT_EQ(oracle.CountInSquare(0, {55, 50}, 10.0), 0);  // obj on left edge
  EXPECT_EQ(oracle.CountInSquare(0, {50, 45}, 10.0), 1);  // obj on top edge
  EXPECT_EQ(oracle.CountInSquare(0, {50, 55}, 10.0), 0);  // obj on bottom
  EXPECT_EQ(oracle.CountInSquare(0, {50, 50}, 10.0), 1);  // centered
}

TEST(OracleTest, PredictsMotion) {
  Oracle oracle(100.0);
  oracle.Apply(InsertAt(0, 10, 10, 2, 1));
  EXPECT_EQ(oracle.CountInSquare(5, {20, 15}, 4.0), 1);
  EXPECT_EQ(oracle.CountInSquare(5, {10, 10}, 4.0), 0);
  EXPECT_DOUBLE_EQ(oracle.PointDensity(5, {20, 15}, 4.0), 1.0 / 16.0);
}

TEST(OracleTest, OutOfDomainPredictionsExcluded) {
  Oracle oracle(100.0);
  oracle.Apply(InsertAt(0, 95, 50, 2, 0));  // exits right edge after t=2
  EXPECT_EQ(oracle.InDomainPositions(0).size(), 1u);
  EXPECT_EQ(oracle.InDomainPositions(2).size(), 1u);  // x = 99
  EXPECT_EQ(oracle.InDomainPositions(3).size(), 0u);  // x = 101
  EXPECT_EQ(oracle.CountInSquare(3, {99, 50}, 10.0), 0);
}

TEST(OracleTest, DenseRegionsEmptyWhenSparse) {
  Oracle oracle(100.0);
  oracle.Apply(InsertAt(0, 20, 20));
  oracle.Apply(InsertAt(1, 80, 80));
  EXPECT_TRUE(oracle.DenseRegions(0, 2.0 / 25.0, 5.0).IsEmpty());
}

TEST(OracleTest, DenseRegionsMatchPointwiseChecks) {
  Oracle oracle(100.0);
  for (const UpdateEvent& e :
       MakeClusteredInserts(600, 2, 100.0, 4.0, 0.2, 61)) {
    oracle.Apply(e);
  }
  const double l = 8.0;
  const double rho = 5.0 / (l * l);
  const Region region = oracle.DenseRegions(0, rho, l);
  Rng rng(62);
  for (int i = 0; i < 600; ++i) {
    const Vec2 p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    EXPECT_EQ(region.Contains(p), oracle.PointDensity(0, p, l) >= rho)
        << p.ToString();
  }
}

TEST(OracleTest, IntervalQueryIsUnionOverTicks) {
  Oracle oracle(100.0);
  // A convoy crossing the domain: each snapshot is dense somewhere else.
  for (ObjectId id = 0; id < 6; ++id) {
    oracle.Apply(InsertAt(id, 10.0 + 0.2 * id, 50.0, 5.0, 0.0));
  }
  const double l = 5.0;
  const double rho = 6.0 / (l * l);
  const Region interval = oracle.DenseRegionsInterval(0, 10, rho, l);
  for (Tick t = 0; t <= 10; ++t) {
    const Region snap = oracle.DenseRegions(t, rho, l);
    EXPECT_NEAR(IntersectionArea(interval, snap), snap.Area(), 1e-9)
        << "t=" << t;
  }
  // And it is strictly larger than any single snapshot.
  EXPECT_GT(interval.Area(), oracle.DenseRegions(0, rho, l).Area());
}

TEST(OracleTest, DeleteShrinksCounts) {
  Oracle oracle(100.0);
  const MotionState s{{50, 50}, {0, 0}, 0};
  oracle.Apply({0, 0, std::nullopt, s});
  oracle.Apply({0, 1, std::nullopt, s});
  EXPECT_EQ(oracle.CountInSquare(0, {50, 50}, 4.0), 2);
  oracle.Apply({0, 1, s, std::nullopt});
  EXPECT_EQ(oracle.CountInSquare(0, {50, 50}, 4.0), 1);
  EXPECT_EQ(oracle.size(), 1u);
}

}  // namespace
}  // namespace pdr
