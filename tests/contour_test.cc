#include "pdr/cheb/contour.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pdr/mobility/generator.h"

namespace pdr {
namespace {

TEST(ContourTest, CircleLevelSet) {
  // f = 1 - r^2 around (5,5); level 0.5 => circle of radius sqrt(0.5).
  const auto field = [](Vec2 p) {
    const double dx = p.x - 5, dy = p.y - 5;
    return 1.0 - (dx * dx + dy * dy);
  };
  const auto contours =
      ExtractContours(field, Rect(0, 0, 10, 10), 0.5, 200);
  ASSERT_EQ(contours.size(), 1u);
  EXPECT_TRUE(contours[0].closed);
  EXPECT_GT(contours[0].points.size(), 20u);
  const double r = std::sqrt(0.5);
  for (const Vec2& p : contours[0].points) {
    EXPECT_NEAR(p.DistanceTo({5, 5}), r, 0.05);
  }
}

TEST(ContourTest, NoContourWhenLevelOutOfRange) {
  const auto field = [](Vec2) { return 1.0; };
  EXPECT_TRUE(ExtractContours(field, Rect(0, 0, 10, 10), 5.0, 50).empty());
  EXPECT_TRUE(ExtractContours(field, Rect(0, 0, 10, 10), -5.0, 50).empty());
}

TEST(ContourTest, OpenContourForHalfPlane) {
  // f = x; level 5 is a vertical line crossing the whole domain: one open
  // polyline from bottom to top.
  const auto field = [](Vec2 p) { return p.x; };
  const auto contours =
      ExtractContours(field, Rect(0, 0, 10, 10), 5.0, 64);
  ASSERT_EQ(contours.size(), 1u);
  EXPECT_FALSE(contours[0].closed);
  for (const Vec2& p : contours[0].points) {
    EXPECT_NEAR(p.x, 5.0, 0.01);
  }
  // Spans the full y range.
  double y_min = 1e9, y_max = -1e9;
  for (const Vec2& p : contours[0].points) {
    y_min = std::min(y_min, p.y);
    y_max = std::max(y_max, p.y);
  }
  EXPECT_NEAR(y_min, 0.0, 0.2);
  EXPECT_NEAR(y_max, 10.0, 0.2);
}

TEST(ContourTest, TwoBlobsGiveTwoLoops) {
  const auto field = [](Vec2 p) {
    const auto bump = [&](double cx, double cy) {
      const double dx = p.x - cx, dy = p.y - cy;
      return std::exp(-(dx * dx + dy * dy) / 2.0);
    };
    return bump(3, 3) + bump(7, 7);
  };
  const auto contours =
      ExtractContours(field, Rect(0, 0, 10, 10), 0.5, 128);
  ASSERT_EQ(contours.size(), 2u);
  EXPECT_TRUE(contours[0].closed);
  EXPECT_TRUE(contours[1].closed);
}

TEST(ContourTest, SeparatesInsideFromOutside) {
  // Every contour point lies within one lattice cell of the level set;
  // stronger: field at contour points is near the level.
  const auto field = [](Vec2 p) {
    return std::sin(p.x / 2.0) * std::cos(p.y / 3.0);
  };
  const auto contours =
      ExtractContours(field, Rect(0, 0, 12, 12), 0.25, 96);
  ASSERT_FALSE(contours.empty());
  for (const Contour& c : contours) {
    for (const Vec2& p : c.points) {
      EXPECT_NEAR(field(p), 0.25, 0.08);
    }
  }
}

TEST(ContourTest, SaddleResolvedConsistently) {
  // f = x*y has a saddle at the origin; the center-sample disambiguation
  // must produce contours that track the level set (no crossing through
  // the wrong diagonal). Level 0.25: hyperbola xy = 0.25.
  const auto field = [](Vec2 p) { return (p.x - 5) * (p.y - 5); };
  const auto contours =
      ExtractContours(field, Rect(0, 0, 10, 10), 0.25, 80);
  ASSERT_FALSE(contours.empty());
  for (const Contour& c : contours) {
    for (const Vec2& p : c.points) {
      EXPECT_NEAR(field(p), 0.25, 0.3) << p;
      // Both branches of the hyperbola lie where (x-5) and (y-5) share a
      // sign; a mis-resolved saddle would emit points near the other
      // diagonal.
      EXPECT_GT((p.x - 5) * (p.y - 5), -0.1);
    }
  }
}

TEST(ContourTest, ResolutionRefinesContourAccuracy) {
  const auto field = [](Vec2 p) {
    const double dx = p.x - 5, dy = p.y - 5;
    return 1.0 - (dx * dx + dy * dy);
  };
  const double r = std::sqrt(0.5);
  auto max_error = [&](int resolution) {
    double worst = 0;
    for (const Contour& c :
         ExtractContours(field, Rect(0, 0, 10, 10), 0.5, resolution)) {
      for (const Vec2& p : c.points) {
        worst = std::max(worst, std::fabs(p.DistanceTo({5, 5}) - r));
      }
    }
    return worst;
  };
  EXPECT_LT(max_error(160), max_error(20));
}

TEST(ContourTest, DensityContoursFromChebGrid) {
  ChebGrid grid({.extent = 100.0, .grid_side = 4, .degree = 6, .horizon = 2,
                 .l = 15.0});
  for (const UpdateEvent& e :
       MakeClusteredInserts(600, 1, 100.0, 4.0, 0.0, 19)) {
    grid.Apply(e);
  }
  // A level well below the cluster peak must produce at least one loop.
  const double level = 0.3 * 600 / (15.0 * 15.0) / 16.0;
  const auto contours = ExtractDensityContours(grid, 0, level, 100);
  EXPECT_FALSE(contours.empty());
}

}  // namespace
}  // namespace pdr
