// Run-to-run determinism of parallel query execution.
//
// A fig8-style workload (clustered objects, a sweep of rho thresholds and
// query ticks) is executed twice at hardware thread count and once
// serially; every answer — rectangle sequences and all non-timing
// counters — is serialized to a transcript string and the transcripts are
// byte-compared. Parallel execution must be deterministic across runs AND
// identical to serial execution; only wall-clock timings may differ.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "pdr/core/fr_engine.h"
#include "pdr/core/pa_engine.h"
#include "pdr/mobility/generator.h"
#include "pdr/parallel/exec_policy.h"
#include "transcript_util.h"

namespace pdr {
namespace {

using test_util::AppendRegion;

constexpr double kExtent = 400.0;
constexpr int kObjects = 800;

// Everything except timing and physical reads: region bits, filter
// counts, sweep counters, logical I/O. (Physical reads depend on which
// thread's miss evicts which frame, i.e. on scheduling — they are the one
// counter the determinism guarantee deliberately excludes.)
std::string FrTranscript(const ExecPolicy& exec) {
  FrEngine fr({.extent = kExtent,
               .histogram_side = 20,
               .horizon = 20,
               .buffer_pages = 128,
               .exec = exec});
  for (const UpdateEvent& e :
       MakeClusteredInserts(kObjects, 3, kExtent, 15.0, 0.2, 88)) {
    fr.Apply(e);
  }
  std::ostringstream os;
  for (double rho_scale : {0.5, 1.0, 2.0, 4.0}) {
    for (Tick q_t : {Tick{0}, Tick{5}, Tick{10}}) {
      const double rho = rho_scale * kObjects / (kExtent * kExtent);
      const auto r = fr.Query(q_t, rho, 30.0);
      os << "q_t=" << q_t << " rho_scale=" << rho_scale << " cells="
         << r.accepted_cells << '/' << r.candidate_cells << '/'
         << r.rejected_cells << " fetched=" << r.objects_fetched
         << " sweep=" << r.sweep.x_strips << '/' << r.sweep.y_sweeps << '/'
         << r.sweep.y_strips << '/' << r.sweep.dense_rects
         << " logical=" << r.cost.io.logical_reads << " region=";
      AppendRegion(r.region, &os);
    }
  }
  return os.str();
}

std::string PaTranscript(const ExecPolicy& exec) {
  PaEngine pa({.extent = kExtent,
               .poly_side = 5,
               .degree = 5,
               .horizon = 10,
               .l = 30.0,
               .eval_grid = 128,
               .exec = exec});
  for (const UpdateEvent& e :
       MakeClusteredInserts(kObjects, 3, kExtent, 15.0, 0.2, 88)) {
    pa.Apply(e);
  }
  std::ostringstream os;
  for (double rho_scale : {0.5, 1.0, 2.0}) {
    for (Tick q_t : {Tick{0}, Tick{4}, Tick{8}}) {
      const double rho = rho_scale * kObjects / (kExtent * kExtent);
      const auto r = pa.Query(q_t, rho);
      os << "q_t=" << q_t << " rho_scale=" << rho_scale << " bnb="
         << r.bnb.nodes_visited << '/' << r.bnb.accepted_boxes << '/'
         << r.bnb.pruned_boxes << '/' << r.bnb.point_evals << " region=";
      AppendRegion(r.region, &os);
    }
  }
  return os.str();
}

TEST(DeterminismTest, FrParallelRunsAreByteIdentical) {
  const std::string run1 = FrTranscript(ExecPolicy::Parallel(0));
  const std::string run2 = FrTranscript(ExecPolicy::Parallel(0));
  EXPECT_EQ(run1, run2) << "parallel FR transcript differs between runs";
}

TEST(DeterminismTest, FrParallelMatchesSerial) {
  const std::string serial = FrTranscript(ExecPolicy::Serial());
  const std::string parallel = FrTranscript(ExecPolicy::Parallel(0));
  EXPECT_EQ(serial, parallel) << "parallel FR transcript differs from serial";
}

TEST(DeterminismTest, PaParallelRunsAreByteIdentical) {
  const std::string run1 = PaTranscript(ExecPolicy::Parallel(0));
  const std::string run2 = PaTranscript(ExecPolicy::Parallel(0));
  EXPECT_EQ(run1, run2) << "parallel PA transcript differs between runs";
}

TEST(DeterminismTest, PaParallelMatchesSerial) {
  const std::string serial = PaTranscript(ExecPolicy::Serial());
  const std::string parallel = PaTranscript(ExecPolicy::Parallel(0));
  EXPECT_EQ(serial, parallel) << "parallel PA transcript differs from serial";
}

}  // namespace
}  // namespace pdr
