#include "pdr/histogram/filter.h"

#include <gtest/gtest.h>

#include "pdr/common/random.h"
#include "pdr/core/oracle.h"
#include "pdr/mobility/generator.h"

namespace pdr {
namespace {

TEST(ThresholdTest, MinObjectsForDensity) {
  EXPECT_EQ(MinObjectsForDensity(0.01, 30.0), 9);   // 0.01*900 = 9 exactly
  EXPECT_EQ(MinObjectsForDensity(0.011, 30.0), 10); // 9.9 -> 10
  EXPECT_EQ(MinObjectsForDensity(1.0, 2.0), 4);
  EXPECT_EQ(MinObjectsForDensity(0.0, 30.0), 0);
}

TEST(NeighborhoodTest, ConservativeHalfWidth) {
  // (2a+1)*l_c <= l - l_c.
  EXPECT_EQ(ConservativeHalfWidth(2.0, 1.0), 0);   // block = 1 cell
  EXPECT_EQ(ConservativeHalfWidth(3.0, 1.0), 0);
  EXPECT_EQ(ConservativeHalfWidth(3.9, 1.0), 0);
  EXPECT_EQ(ConservativeHalfWidth(4.0, 1.0), 1);   // block = 3 cells
  EXPECT_EQ(ConservativeHalfWidth(6.0, 1.0), 2);   // block = 5 cells
  EXPECT_EQ(ConservativeHalfWidth(30.0, 10.0), 0); // eta = 3
  // l < 2*l_c: no conservative block exists.
  EXPECT_LT(ConservativeHalfWidth(1.5, 1.0), 0);
}

TEST(NeighborhoodTest, ExpansiveHalfWidth) {
  EXPECT_EQ(ExpansiveHalfWidth(2.0, 1.0), 1);
  EXPECT_EQ(ExpansiveHalfWidth(3.0, 1.0), 2);  // ceil(1.5)
  EXPECT_EQ(ExpansiveHalfWidth(4.0, 1.0), 2);
  EXPECT_EQ(ExpansiveHalfWidth(30.0, 10.0), 2);
  EXPECT_EQ(ExpansiveHalfWidth(60.0, 10.0), 3);
}

TEST(NeighborhoodTest, ConservativeBlockInsideEveryLSquare) {
  // Geometric soundness of the half-width formula itself: for any point p
  // in a cell, the conservative block is inside S_l(p).
  for (double l : {2.0, 3.0, 4.5, 6.0, 8.7}) {
    const double lc = 1.0;
    const int a = ConservativeHalfWidth(l, lc);
    if (a < 0) continue;
    // Cell [5,6)^2; block spans [5-a, 6+a]^2 in cell units.
    const Rect block(5 - a, 5 - a, 6 + a, 6 + a);
    for (const Vec2 corner :
         {Vec2{5, 5}, Vec2{6, 5}, Vec2{5, 6}, Vec2{6, 6}}) {
      const Rect square = Rect::CenteredSquare(corner, l);
      EXPECT_TRUE(square.Contains(block)) << "l=" << l << " p=" << corner;
    }
  }
}

TEST(NeighborhoodTest, ExpansiveBlockCoversEveryLSquare) {
  for (double l : {2.0, 3.0, 4.5, 6.0, 8.7}) {
    const double lc = 1.0;
    const int b = ExpansiveHalfWidth(l, lc);
    const Rect block(5 - b, 5 - b, 6 + b, 6 + b);
    for (const Vec2 corner :
         {Vec2{5, 5}, Vec2{6, 5}, Vec2{5, 6}, Vec2{6, 6}}) {
      const Rect square = Rect::CenteredSquare(corner, l);
      EXPECT_TRUE(block.Contains(square)) << "l=" << l << " p=" << corner;
    }
  }
}

class FilterSoundnessTest : public ::testing::TestWithParam<
                                std::tuple<double, double, uint64_t>> {};

// The load-bearing property (Section 5.2): accepted cells contain only
// dense points, rejected cells contain no dense point — verified against
// the brute-force oracle at random in-cell probes.
TEST_P(FilterSoundnessTest, AcceptsAndRejectsAreSound) {
  const auto [rho_scale, l, seed] = GetParam();
  const double extent = 100.0;
  DensityHistogram dh({.extent = extent, .cells_per_side = 20, .horizon = 4});
  Oracle oracle(extent);
  for (const UpdateEvent& e :
       MakeClusteredInserts(1200, 3, extent, 4.0, 0.2, seed)) {
    dh.Apply(e);
    oracle.Apply(e);
  }
  // rho chosen near interesting territory: average count in an l-square
  // is 1200 * l^2 / extent^2; scale around it.
  const double rho = rho_scale * 1200.0 / (extent * extent);
  const int64_t n_min = MinObjectsForDensity(rho, l);
  const FilterResult filter = FilterCells(dh, 0, rho, l);
  EXPECT_EQ(filter.accepted + filter.rejected + filter.candidates, 400);

  Rng rng(seed ^ 0xabc);
  const Grid& grid = dh.grid();
  int accepted_checked = 0, rejected_checked = 0;
  for (int row = 0; row < 20; ++row) {
    for (int col = 0; col < 20; ++col) {
      const CellClass cls = filter.At(col, row);
      if (cls == CellClass::kCandidate) continue;
      const Rect cell = grid.CellRect(col, row);
      for (int probe = 0; probe < 5; ++probe) {
        const Vec2 p{rng.Uniform(cell.x_lo, cell.x_hi),
                     rng.Uniform(cell.y_lo, cell.y_hi)};
        const int64_t count = oracle.CountInSquare(0, p, l);
        if (cls == CellClass::kAccept) {
          EXPECT_GE(count, n_min) << "accepted cell has sparse point " << p;
          ++accepted_checked;
        } else {
          EXPECT_LT(count, n_min) << "rejected cell has dense point " << p;
          ++rejected_checked;
        }
      }
    }
  }
  // The workload must actually exercise both outcomes somewhere across
  // the parameter sweep; at least rejects always exist.
  EXPECT_GT(rejected_checked, 0);
  (void)accepted_checked;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FilterSoundnessTest,
    ::testing::Combine(::testing::Values(0.5, 2.0, 6.0, 20.0),
                       ::testing::Values(10.0, 17.0, 25.0),
                       ::testing::Values(uint64_t{3}, uint64_t{77})));

TEST(FilterTest, AcceptsAppearWithHighConcentration) {
  // A tight blob far denser than rho must produce accepted cells.
  const double extent = 100.0;
  DensityHistogram dh({.extent = extent, .cells_per_side = 20, .horizon = 2});
  std::vector<UpdateEvent> events =
      MakeClusteredInserts(2000, 1, extent, 2.0, 0.0, 5);
  for (const UpdateEvent& e : events) dh.Apply(e);
  const double l = 20.0;
  const double rho = 100.0 / (l * l);  // 100 objects per l-square
  const FilterResult filter = FilterCells(dh, 0, rho, l);
  EXPECT_GT(filter.accepted, 0);
  EXPECT_GT(filter.rejected, 300);
}

TEST(FilterTest, EverythingRejectedWhenEmpty) {
  DensityHistogram dh({.extent = 100.0, .cells_per_side = 10, .horizon = 2});
  const FilterResult filter = FilterCells(dh, 0, 0.01, 20.0);
  EXPECT_EQ(filter.rejected, 100);
  EXPECT_EQ(filter.accepted, 0);
  EXPECT_EQ(filter.candidates, 0);
}

TEST(FilterTest, ZeroThresholdAcceptsEverything) {
  DensityHistogram dh({.extent = 100.0, .cells_per_side = 10, .horizon = 2});
  const FilterResult filter = FilterCells(dh, 0, 0.0, 20.0);
  EXPECT_EQ(filter.accepted, 100);
}

TEST(FilterTest, NaiveVariantMatchesPrefixSums) {
  const double extent = 100.0;
  DensityHistogram dh({.extent = extent, .cells_per_side = 20, .horizon = 2});
  for (const UpdateEvent& e :
       MakeClusteredInserts(1200, 3, extent, 5.0, 0.25, 7)) {
    dh.Apply(e);
  }
  for (double l : {10.0, 17.0, 30.0}) {
    for (double rho_scale : {0.5, 2.0, 8.0}) {
      const double rho = rho_scale * 1200 / (extent * extent);
      const FilterResult fast = FilterCells(dh, 0, rho, l);
      const FilterResult naive = FilterCellsNaive(dh, 0, rho, l);
      EXPECT_EQ(fast.classes, naive.classes)
          << "l=" << l << " rho=" << rho;
      EXPECT_EQ(fast.accepted, naive.accepted);
      EXPECT_EQ(fast.rejected, naive.rejected);
      EXPECT_EQ(fast.candidates, naive.candidates);
    }
  }
}

TEST(FilterTest, CellsAsRegionOptimisticCoversPessimistic) {
  const double extent = 100.0;
  DensityHistogram dh({.extent = extent, .cells_per_side = 20, .horizon = 2});
  for (const UpdateEvent& e :
       MakeClusteredInserts(1500, 2, extent, 5.0, 0.3, 6)) {
    dh.Apply(e);
  }
  const double rho = 3.0 * 1500 / (extent * extent);
  const FilterResult filter = FilterCells(dh, 0, rho, 15.0);
  const Region optimistic = CellsAsRegion(filter, dh.grid(), true);
  const Region pessimistic = CellsAsRegion(filter, dh.grid(), false);
  EXPECT_GE(optimistic.Area(), pessimistic.Area());
  // Pessimistic region is a subset of the optimistic one.
  EXPECT_NEAR(IntersectionArea(optimistic, pessimistic), pessimistic.Area(),
              1e-6);
}

}  // namespace
}  // namespace pdr
