#include "pdr/mobility/object.h"

#include <gtest/gtest.h>

namespace pdr {
namespace {

TEST(MotionStateTest, LinearPrediction) {
  const MotionState s{{10, 20}, {1, -2}, 5};
  EXPECT_EQ(s.PositionAt(Tick{5}), Vec2(10, 20));
  EXPECT_EQ(s.PositionAt(Tick{8}), Vec2(13, 14));
  EXPECT_EQ(s.PositionAt(7.5), Vec2(12.5, 15));
}

TEST(MotionStateTest, RebasePreservesTrajectory) {
  const MotionState s{{10, 20}, {1, -2}, 5};
  const MotionState r = s.RebasedTo(9);
  EXPECT_EQ(r.t_ref, 9);
  for (Tick t = 9; t < 20; ++t) {
    EXPECT_EQ(r.PositionAt(t), s.PositionAt(t));
  }
}

TEST(MotionStateTest, StationaryObject) {
  const MotionState s{{3, 4}, {0, 0}, 0};
  EXPECT_EQ(s.PositionAt(Tick{1000}), Vec2(3, 4));
}

TEST(UpdateEventTest, KindPredicates) {
  const MotionState s{{0, 0}, {0, 0}, 0};
  UpdateEvent insert{0, 1, std::nullopt, s};
  EXPECT_TRUE(insert.IsInsert());
  EXPECT_FALSE(insert.IsDelete());
  EXPECT_FALSE(insert.IsModify());

  UpdateEvent del{3, 1, s, std::nullopt};
  EXPECT_TRUE(del.IsDelete());
  EXPECT_FALSE(del.IsInsert());

  UpdateEvent modify{3, 1, s, s.RebasedTo(3)};
  EXPECT_TRUE(modify.IsModify());
  EXPECT_FALSE(modify.IsInsert());
  EXPECT_FALSE(modify.IsDelete());
}

TEST(ObjectTableTest, InsertFindDelete) {
  ObjectTable table;
  const MotionState s{{1, 2}, {3, 4}, 0};
  table.Apply({0, 7, std::nullopt, s});
  EXPECT_EQ(table.size(), 1u);
  ASSERT_NE(table.Find(7), nullptr);
  EXPECT_EQ(*table.Find(7), s);
  EXPECT_EQ(table.Find(3), nullptr);

  table.Apply({5, 7, s, std::nullopt});
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find(7), nullptr);
}

TEST(ObjectTableTest, ModifyReplacesState) {
  ObjectTable table;
  const MotionState s0{{1, 2}, {3, 4}, 0};
  const MotionState s1{{9, 9}, {0, 0}, 4};
  table.Apply({0, 2, std::nullopt, s0});
  table.Apply({4, 2, s0, s1});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(*table.Find(2), s1);
}

TEST(ObjectTableTest, PositionsAtPredicts) {
  ObjectTable table;
  table.Apply({0, 0, std::nullopt, MotionState{{0, 0}, {1, 0}, 0}});
  table.Apply({0, 1, std::nullopt, MotionState{{10, 10}, {0, 2}, 0}});
  const auto positions = table.PositionsAt(5);
  ASSERT_EQ(positions.size(), 2u);
  // Order is by id.
  EXPECT_EQ(positions[0], Vec2(5, 0));
  EXPECT_EQ(positions[1], Vec2(10, 20));
}

TEST(ObjectTableTest, LiveObjectsSkipsDeleted) {
  ObjectTable table;
  const MotionState s{{0, 0}, {0, 0}, 0};
  table.Apply({0, 0, std::nullopt, s});
  table.Apply({0, 1, std::nullopt, s});
  table.Apply({0, 2, std::nullopt, s});
  table.Apply({1, 1, s, std::nullopt});
  const auto live = table.LiveObjects();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].first, 0u);
  EXPECT_EQ(live[1].first, 2u);
}

TEST(ObjectTableTest, SparseIdsSupported) {
  ObjectTable table;
  const MotionState s{{0, 0}, {0, 0}, 0};
  table.Apply({0, 1000, std::nullopt, s});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_NE(table.Find(1000), nullptr);
}

}  // namespace
}  // namespace pdr
