// Tests for the diagnostics layer: flight-recorder rings (single-thread
// semantics, overwrite, concurrent producers), byte-stable golden dumps
// under the deterministic clock seam, dump triggers, EXPLAIN provenance
// records, the SLO burn-rate monitor, and the Prometheus exporter.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pdr/obs/clock.h"
#include "pdr/obs/explain.h"
#include "pdr/obs/export.h"
#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/obs.h"
#include "pdr/obs/slo.h"
#include "pdr/parallel/thread_pool.h"
#include "pdr/resilience/admission.h"
#include "pdr/resilience/executor.h"

namespace pdr {
namespace {

// Renders through `fn(FILE*)` into a string via tmpfile().
template <typename Fn>
std::string RenderToString(Fn&& fn) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  fn(f);
  const long size = std::ftell(f);
  std::rewind(f);
  std::string out(static_cast<size_t>(size), '\0');
  EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
  std::fclose(f);
  return out;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!PdrObs::CompiledIn()) GTEST_SKIP() << "obs compiled out";
    FlightRecorder::Global().Reset();
    FlightRecorder::Options options;
    options.ring_capacity = 1 << 10;
    FlightRecorder::Global().Configure(options);
    FlightRecorder::SetEnabled(true);
  }
  void TearDown() override {
    if (!PdrObs::CompiledIn()) return;
    FlightRecorder::SetEnabled(false);
    FlightRecorder::Global().Reset();
    FlightRecorder::Global().Configure(FlightRecorder::Options{});
  }
};

TEST_F(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  LogicalClock clock(/*offset_ns=*/1000, /*step_ns=*/10);
  ScopedObsClock scoped(&clock);
  FlightRecorder::QueryScope scope(7);
  FlightRecorder::Record(FrEvent::kFilter, FlightRecorder::Pack(3, 4), 11);
  FlightRecorder::Record(FrEvent::kPageFault, 42, 1);
  const std::vector<MicroEvent> events = FlightRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FrEvent::kFilter);
  EXPECT_EQ(events[0].query_id, 7u);
  EXPECT_EQ(events[0].ts_ns, 1000);
  EXPECT_EQ(FlightRecorder::PackHi(events[0].a), 3);
  EXPECT_EQ(FlightRecorder::PackLo(events[0].a), 4);
  EXPECT_EQ(events[0].b, 11);
  EXPECT_EQ(events[1].kind, FrEvent::kPageFault);
  EXPECT_EQ(events[1].ts_ns, 1010);
}

TEST_F(FlightRecorderTest, DisabledRecorderDropsEvents) {
  FlightRecorder::SetEnabled(false);
  FlightRecorder::Record(FrEvent::kPageFault, 1, 1);
  EXPECT_TRUE(FlightRecorder::Global().Snapshot().empty());
}

TEST_F(FlightRecorderTest, RingOverwriteKeepsNewestEvents) {
  FlightRecorder::Options options;
  options.ring_capacity = 16;
  FlightRecorder::Global().Configure(options);
  for (int i = 0; i < 100; ++i) {
    FlightRecorder::Record(FrEvent::kTaskRun, i);
  }
  const std::vector<MicroEvent> events = FlightRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 16u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 84 + static_cast<int64_t>(i));
  }
}

TEST_F(FlightRecorderTest, QueryScopeNestsAndRestores) {
  EXPECT_EQ(FlightRecorder::CurrentQueryId(), 0u);
  {
    FlightRecorder::QueryScope outer(5);
    EXPECT_EQ(FlightRecorder::CurrentQueryId(), 5u);
    {
      FlightRecorder::QueryScope inner(9);
      EXPECT_EQ(FlightRecorder::CurrentQueryId(), 9u);
    }
    EXPECT_EQ(FlightRecorder::CurrentQueryId(), 5u);
  }
  EXPECT_EQ(FlightRecorder::CurrentQueryId(), 0u);
}

TEST_F(FlightRecorderTest, ThreadPoolTasksInheritQueryId) {
  ThreadPool pool(2);
  {
    FlightRecorder::QueryScope scope(33);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(pool.Submit(
          [] { FlightRecorder::Record(FrEvent::kPageFault, 1, 0); }));
    }
    for (auto& f : futures) pool.Wait(f);
  }
  int attributed = 0;
  for (const MicroEvent& e : FlightRecorder::Global().Snapshot()) {
    if (e.kind == FrEvent::kPageFault) {
      EXPECT_EQ(e.query_id, 33u);
      ++attributed;
    }
  }
  EXPECT_EQ(attributed, 8);
}

// The golden dump: a fixed event sequence under the logical clock must
// render to these exact bytes, so dump formats only change deliberately.
TEST_F(FlightRecorderTest, GoldenChromeTraceDump) {
  LogicalClock clock(/*offset_ns=*/5000, /*step_ns=*/1500);
  ScopedObsClock scoped(&clock);
  FlightRecorder::QueryScope scope(3);
  FlightRecorder::Record(FrEvent::kQueryBegin, 70, 0);
  FlightRecorder::Record(FrEvent::kCellBegin, FlightRecorder::Pack(2, 5));
  FlightRecorder::Record(FrEvent::kSweep, FlightRecorder::Pack(4, 9),
                         FlightRecorder::Pack(3, 2));
  FlightRecorder::Record(FrEvent::kCellEnd, FlightRecorder::Pack(2, 5),
                         FlightRecorder::Pack(17, 2));
  FlightRecorder::Record(FrEvent::kQueryEnd, 17, 2);
  const std::vector<MicroEvent> events = FlightRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 5u);

  const std::string trace = RenderToString([&](std::FILE* f) {
    FlightRecorder::WriteChromeTrace(f, events, "golden", 3);
  });
  const std::string expected =
      "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"reason\":\"golden\","
      "\"query_id\":\"3\"},\"traceEvents\":[\n"
      "{\"name\":\"query\",\"cat\":\"pdr\",\"ph\":\"B\",\"ts\":5.000,"
      "\"pid\":1,\"tid\":0,\"args\":{\"qid\":3,\"detail\":{\"q_t\":70,"
      "\"rho\":\"0x0p+0\"}}},\n"
      "{\"name\":\"cell\",\"cat\":\"pdr\",\"ph\":\"B\",\"ts\":6.500,"
      "\"pid\":1,\"tid\":0,\"args\":{\"qid\":3,\"detail\":{\"col\":2,"
      "\"row\":5}}},\n"
      "{\"name\":\"sweep\",\"cat\":\"pdr\",\"ph\":\"i\",\"ts\":8.000,"
      "\"pid\":1,\"tid\":0,\"s\":\"t\",\"args\":{\"qid\":3,\"detail\":{"
      "\"x_strips\":4,\"y_sweeps\":9,\"y_strips\":3,\"rects\":2}}},\n"
      "{\"name\":\"cell\",\"cat\":\"pdr\",\"ph\":\"E\",\"ts\":9.500,"
      "\"pid\":1,\"tid\":0},\n"
      "{\"name\":\"query\",\"cat\":\"pdr\",\"ph\":\"E\",\"ts\":11.000,"
      "\"pid\":1,\"tid\":0}\n"
      "]}\n";
  EXPECT_EQ(trace, expected);

  const std::string jsonl = RenderToString([&](std::FILE* f) {
    FlightRecorder::WriteJsonl(f, events, "golden", 3);
  });
  const std::string expected_jsonl =
      "{\"type\":\"fr_dump\",\"reason\":\"golden\",\"query_id\":3,"
      "\"events\":5}\n"
      "{\"type\":\"fr_event\",\"ts_ns\":5000,\"qid\":3,\"tid\":0,"
      "\"kind\":\"query_begin\",\"args\":{\"q_t\":70,\"rho\":\"0x0p+0\"}}\n"
      "{\"type\":\"fr_event\",\"ts_ns\":6500,\"qid\":3,\"tid\":0,"
      "\"kind\":\"cell_begin\",\"args\":{\"col\":2,\"row\":5}}\n"
      "{\"type\":\"fr_event\",\"ts_ns\":8000,\"qid\":3,\"tid\":0,"
      "\"kind\":\"sweep\",\"args\":{\"x_strips\":4,\"y_sweeps\":9,"
      "\"y_strips\":3,\"rects\":2}}\n"
      "{\"type\":\"fr_event\",\"ts_ns\":9500,\"qid\":3,\"tid\":0,"
      "\"kind\":\"cell_end\",\"args\":{\"col\":2,\"row\":5,\"objects\":17,"
      "\"rects\":2}}\n"
      "{\"type\":\"fr_event\",\"ts_ns\":11000,\"qid\":3,\"tid\":0,"
      "\"kind\":\"query_end\",\"args\":{\"objects\":17,\"dense_rects\":2}}\n";
  EXPECT_EQ(jsonl, expected_jsonl);
}

// An End whose Begin the ring overwrote degrades to an instant; a Begin
// with no End is closed synthetically at the last timestamp.
TEST_F(FlightRecorderTest, TraceRepairsUnbalancedPairs) {
  LogicalClock clock(100, 10);
  ScopedObsClock scoped(&clock);
  FlightRecorder::Record(FrEvent::kCellEnd, FlightRecorder::Pack(0, 0));
  FlightRecorder::Record(FrEvent::kQueryBegin, 5, 0);
  FlightRecorder::Record(FrEvent::kPageFault, 1, 1);
  const std::string trace = RenderToString([&](std::FILE* f) {
    FlightRecorder::WriteChromeTrace(f, FlightRecorder::Global().Snapshot(),
                                     "repair", 0);
  });
  // The orphan cell_end became an instant...
  EXPECT_NE(trace.find("\"name\":\"cell\",\"cat\":\"pdr\",\"ph\":\"i\""),
            std::string::npos);
  // ...and the dangling query Begin got a synthetic End at ts 120 ns.
  EXPECT_NE(trace.find("\"name\":\"query\",\"cat\":\"pdr\",\"ph\":\"E\","
                       "\"ts\":0.120"),
            std::string::npos);
}

// Concurrent producers hammer their rings (with overwrite) while the
// snapshot/dump path runs; the trace must stay schema-valid and nested.
// This test is in the TSan lane: the rings must be clean by construction.
TEST_F(FlightRecorderTest, ConcurrentProducersYieldValidNestedTrace) {
  FlightRecorder::Options options;
  options.ring_capacity = 128;  // force overwrite mid-flight
  FlightRecorder::Global().Configure(options);

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        FlightRecorder::QueryScope scope(
            static_cast<uint32_t>(t * 1000 + q + 1));
        FlightRecorder::Record(FrEvent::kQueryBegin, q, 0);
        for (int c = 0; c < 5; ++c) {
          FlightRecorder::Record(FrEvent::kCellBegin,
                                 FlightRecorder::Pack(c, q));
          FlightRecorder::Record(FrEvent::kSweep, 1, 1);
          FlightRecorder::Record(FrEvent::kCellEnd,
                                 FlightRecorder::Pack(c, q));
        }
        FlightRecorder::Record(FrEvent::kQueryEnd, 5, 1);
      }
    });
  }
  // Concurrent reader: snapshots while producers are mid-write must never
  // surface torn slots (validated below on the final snapshot too).
  std::vector<MicroEvent> mid = FlightRecorder::Global().Snapshot();
  for (auto& th : threads) th.join();

  const std::vector<MicroEvent> events = FlightRecorder::Global().Snapshot();
  ASSERT_FALSE(events.empty());
  // Timestamps are sorted and every event decodes to a known kind.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
  for (const MicroEvent& e : events) {
    EXPECT_STRNE(FrEventName(e.kind), "unknown");
    EXPECT_LT(static_cast<int>(e.tid), kThreads);
  }

  const std::string trace = RenderToString([&](std::FILE* f) {
    FlightRecorder::WriteChromeTrace(f, events, "concurrent", 0);
  });
  // Walk the emitted events: per-tid B/E balance may never go negative and
  // must end at zero (synthetic closes included).
  std::map<int, int> depth;
  size_t pos = 0;
  int parsed = 0;
  while ((pos = trace.find("\"ph\":\"", pos)) != std::string::npos) {
    const char ph = trace[pos + 6];
    const size_t tid_pos = trace.find("\"tid\":", pos);
    ASSERT_NE(tid_pos, std::string::npos);
    const int tid = std::stoi(trace.substr(tid_pos + 6));
    if (ph == 'B') ++depth[tid];
    if (ph == 'E') {
      --depth[tid];
      EXPECT_GE(depth[tid], 0);
    }
    ++parsed;
    pos += 6;
  }
  EXPECT_GT(parsed, 0);
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
}

TEST_F(FlightRecorderTest, DumpHonorsTriggersAndMaxDumps) {
  char tmpl[] = "/tmp/pdr_fr_test_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  FlightRecorder::Options options;
  options.dump_dir = tmpl;
  options.triggers = FlightRecorder::kOnDeadlineMiss;
  options.max_dumps = 2;
  FlightRecorder::Global().Configure(options);
  FlightRecorder::Record(FrEvent::kPageFault, 1, 1);

  // Unarmed trigger: no dump.
  FlightRecorder::Global().TriggerDump(FlightRecorder::kOnCrash, "crash");
  EXPECT_EQ(FlightRecorder::Global().dumps_written(), 0);

  FlightRecorder::Global().TriggerDump(FlightRecorder::kOnDeadlineMiss,
                                       "miss", 4);
  EXPECT_EQ(FlightRecorder::Global().dumps_written(), 1);
  const std::string jsonl =
      std::string(tmpl) + "/fr_000_miss_q4.jsonl";
  const std::string trace =
      std::string(tmpl) + "/fr_000_miss_q4.trace.json";
  std::FILE* f = std::fopen(jsonl.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  f = std::fopen(trace.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);

  // The cap bounds disk usage during an incident storm.
  FlightRecorder::Global().TriggerDump(FlightRecorder::kOnDeadlineMiss, "m2");
  FlightRecorder::Global().TriggerDump(FlightRecorder::kOnDeadlineMiss, "m3");
  EXPECT_EQ(FlightRecorder::Global().dumps_written(), 2);
}

// ---------------------------------------------------------------------------
// EXPLAIN provenance records

TEST(ExplainRecordTest, JsonAndTextNameTierStagesAndCounts) {
  ExplainRecord ex;
  ex.query_id = 12;
  ex.q_t = 70;
  ex.rho = 0.004;
  ex.l = 30.0;
  ex.tier = AnswerTier::kHistogram;
  ex.downgrade_reason = DowngradeReason::kDeadline;
  ex.timed_out = true;
  ex.budget_ms = 5.0;
  ex.elapsed_ms = 7.5;
  ex.stages.push_back({"exact", 5.2, false});
  ex.stages.push_back({"histogram", 2.1, true});
  ex.accepted_cells = 61;
  ex.rejected_cells = 5624;
  ex.candidate_cells = 4315;

  const std::string json = ex.ToJson();
  EXPECT_NE(json.find("\"tier\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"downgrade_reason\":\"deadline\""),
            std::string::npos);
  EXPECT_NE(json.find("\"candidate_cells\":4315"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"exact\""), std::string::npos);
  EXPECT_EQ(json.find("\"audit_precision\""), std::string::npos)
      << "unaudited record must omit audit fields";

  const std::string text = ex.ToText();
  EXPECT_NE(text.find("histogram"), std::string::npos);
  EXPECT_NE(text.find("deadline"), std::string::npos);
  EXPECT_NE(text.find("candidates=4315"), std::string::npos);

  ex.audited = true;
  ex.audit_precision = 0.75;
  EXPECT_NE(ex.ToJson().find("\"audit_precision\""), std::string::npos);
}

TEST(ExplainRecordTest, SignatureIgnoresTimingsAndQueryId) {
  ExplainRecord a;
  a.query_id = 1;
  a.q_t = 70;
  a.rho = 0.004;
  a.l = 30.0;
  a.tier = AnswerTier::kExact;
  a.stages.push_back({"filter", 1.0, true});
  a.stages.push_back({"refine", 2.0, true});
  a.accepted_cells = 61;
  a.candidate_cells = 4315;
  a.objects_fetched = 1000;

  ExplainRecord b = a;
  b.query_id = 999;             // new qid,
  b.stages[0].spent_ms = 17.0;  // different wall time,
  b.elapsed_ms = 100.0;         // different total,
  b.pages_read_physical = 55;   // different cache behavior:
  EXPECT_EQ(a.DeterministicSignature(), b.DeterministicSignature());

  b.candidate_cells = 4316;  // but any semantic count change shows.
  EXPECT_NE(a.DeterministicSignature(), b.DeterministicSignature());
}

// ---------------------------------------------------------------------------
// SLO burn-rate monitor

SloMonitor::Options TightSlo() {
  SloMonitor::Options options;
  options.latency_slo_ms = 10.0;
  options.target = 0.9;  // 10% error budget
  options.short_window = 4;
  options.long_window = 8;
  options.burn_alert = 2.0;
  return options;
}

TEST(SloMonitorTest, SingleSpikeDoesNotAlert) {
  SloMonitor slo(TightSlo());
  for (int i = 0; i < 100; ++i) {
    slo.OnSample(i == 50 ? 100.0 : 1.0, AnswerTier::kExact, false);
  }
  EXPECT_FALSE(slo.alerting());
  EXPECT_TRUE(slo.alerts().empty());
}

TEST(SloMonitorTest, SustainedBurnAlertsOncePerIncident) {
  SloMonitor slo(TightSlo());
  for (int i = 0; i < 20; ++i) slo.OnSample(1.0, AnswerTier::kExact, false);
  EXPECT_FALSE(slo.alerting());
  for (int i = 0; i < 20; ++i) slo.OnSample(50.0, AnswerTier::kExact, false);
  EXPECT_TRUE(slo.alerting());
  ASSERT_EQ(slo.alerts().size(), 1u);
  EXPECT_EQ(slo.alerts()[0].signal, "latency");
  EXPECT_GE(slo.alerts()[0].burn_short, 2.0);

  // Recovery: enough good samples drain the long window below burn 1.
  for (int i = 0; i < 20; ++i) slo.OnSample(1.0, AnswerTier::kExact, false);
  EXPECT_FALSE(slo.alerting());

  // A second incident latches (and records) again.
  for (int i = 0; i < 20; ++i) slo.OnSample(50.0, AnswerTier::kExact, false);
  EXPECT_TRUE(slo.alerting());
  EXPECT_EQ(slo.alerts().size(), 2u);
}

TEST(SloMonitorTest, DegradedTierAndShedAreSeparateSignals) {
  SloMonitor slo(TightSlo());
  for (int i = 0; i < 20; ++i) {
    slo.OnSample(1.0, AnswerTier::kHistogram, false);
  }
  ASSERT_EQ(slo.alerts().size(), 1u);
  EXPECT_EQ(slo.alerts()[0].signal, "degraded");
  for (int i = 0; i < 20; ++i) slo.OnSample(1.0, AnswerTier::kShed, true);
  ASSERT_EQ(slo.alerts().size(), 2u);
  EXPECT_EQ(slo.alerts()[1].signal, "shed");
}

TEST(SloMonitorTest, AuditQualityBelowFloorAlerts) {
  SloMonitor::Options options = TightSlo();
  options.min_audit_recall = 0.9;
  SloMonitor slo(options);
  for (int i = 0; i < 20; ++i) slo.OnAudit(1.0, 0.5);
  ASSERT_FALSE(slo.alerts().empty());
  EXPECT_EQ(slo.alerts()[0].signal, "audit");
}

TEST(SloMonitorTest, AlertHalvesAdmissionBoundAndRecoveryRestores) {
  AdmissionController admission(AdmissionController::Options{8});
  SloMonitor slo(TightSlo());
  slo.SetAdmission(&admission);
  int hook_calls = 0;
  slo.SetAlertHook([&hook_calls](const SloMonitor::Alert&) { ++hook_calls; });

  for (int i = 0; i < 20; ++i) slo.OnSample(50.0, AnswerTier::kExact, false);
  EXPECT_TRUE(slo.alerting());
  EXPECT_EQ(hook_calls, 1);
  EXPECT_EQ(admission.max_inflight(), 4);

  for (int i = 0; i < 20; ++i) slo.OnSample(1.0, AnswerTier::kExact, false);
  EXPECT_FALSE(slo.alerting());
  EXPECT_EQ(admission.max_inflight(), 8);
}

TEST(SloMonitorTest, BurnRatesAreQueryable) {
  SloMonitor slo(TightSlo());
  for (int i = 0; i < 8; ++i) slo.OnSample(50.0, AnswerTier::kExact, false);
  // All-bad windows: bad fraction 1.0 over a 0.1 budget = burn 10.
  EXPECT_DOUBLE_EQ(slo.BurnShort("latency"), 10.0);
  EXPECT_DOUBLE_EQ(slo.BurnLong("latency"), 10.0);
  EXPECT_DOUBLE_EQ(slo.BurnShort("nope"), 0.0);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(PrometheusExportTest, SanitizesNamesAndPreservesLabels) {
  if (!PdrObs::CompiledIn()) GTEST_SKIP() << "obs compiled out";
  PdrObs::SetEnabled(true);
  MetricsRegistry registry;
  registry.GetCounter("pdr.monitor.ticks").Add(41);
  registry
      .GetCounter(
          WithLabel("pdr.resilience.downgrade_reason", "reason", "deadline"))
      .Add(3);
  registry
      .GetCounter(WithLabel("pdr.resilience.downgrade_reason", "reason",
                            "quo\"te\\back"))
      .Add(1);
  registry.GetGauge("pdr.slo.burn_short{signal=\"latency\"}").Set(2.5);
  Histogram& h = registry.GetHistogram("pdr.monitor.tick_ms");
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));

  const std::string text = RenderToString([&](std::FILE* f) {
    WriteMetricsPrometheus(f, registry.TakeSnapshot());
  });

  EXPECT_NE(text.find("# TYPE pdr_monitor_ticks counter\n"
                      "pdr_monitor_ticks 41\n"),
            std::string::npos);
  // One TYPE line for the labeled family, then one series per label.
  EXPECT_NE(text.find("# TYPE pdr_resilience_downgrade_reason counter"),
            std::string::npos);
  EXPECT_NE(
      text.find("pdr_resilience_downgrade_reason{reason=\"deadline\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find(
                "pdr_resilience_downgrade_reason{reason=\"quo\\\"te\\\\"
                "back\"} 1"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE pdr_resilience_downgrade_reason counter",
                      text.find("# TYPE pdr_resilience_downgrade_reason "
                                "counter") +
                          1),
            std::string::npos)
      << "family TYPE line must not repeat";
  EXPECT_NE(text.find("pdr_slo_burn_short{signal=\"latency\"} 2.5"),
            std::string::npos);
  // Histograms export as summaries with merged quantile labels.
  EXPECT_NE(text.find("# TYPE pdr_monitor_tick_ms summary"),
            std::string::npos);
  EXPECT_NE(text.find("pdr_monitor_tick_ms{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("pdr_monitor_tick_ms_sum 5050\n"), std::string::npos);
  EXPECT_NE(text.find("pdr_monitor_tick_ms_count 100\n"), std::string::npos);
  // Every metric name is sanitized: no line starts with a character
  // outside the Prometheus name charset, and no name keeps its dots.
  size_t line_start = 0;
  while (line_start < text.size()) {
    const size_t name_end = text.find_first_of(" {", line_start);
    ASSERT_NE(name_end, std::string::npos);
    const std::string name = text.substr(line_start, name_end - line_start);
    if (name != "#") {
      EXPECT_EQ(name.find('.'), std::string::npos) << name;
    }
    const size_t nl = text.find('\n', line_start);
    if (nl == std::string::npos) break;
    line_start = nl + 1;
  }
}

}  // namespace
}  // namespace pdr
