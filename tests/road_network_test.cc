#include "pdr/mobility/road_network.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pdr {
namespace {

RoadNetworkConfig SmallConfig() {
  RoadNetworkConfig config;
  config.extent = 100.0;
  config.grid_nodes = 8;
  config.num_hotspots = 4;
  config.seed = 11;
  return config;
}

TEST(RoadNetworkTest, NodeCountAndBounds) {
  const RoadNetwork net = RoadNetwork::SyntheticMetro(SmallConfig());
  EXPECT_EQ(net.node_count(), 64);
  for (int i = 0; i < net.node_count(); ++i) {
    const Vec2 p = net.node(i);
    EXPECT_GE(p.x, 0);
    EXPECT_LE(p.x, 100);
    EXPECT_GE(p.y, 0);
    EXPECT_LE(p.y, 100);
  }
}

TEST(RoadNetworkTest, GridConnectivityDegrees) {
  const RoadNetwork net = RoadNetwork::SyntheticMetro(SmallConfig());
  // Interior nodes have 4 neighbors, corners 2, edges 3.
  int degree2 = 0, degree3 = 0, degree4 = 0;
  for (int i = 0; i < net.node_count(); ++i) {
    const size_t degree = net.edges_from(i).size();
    if (degree == 2) ++degree2;
    if (degree == 3) ++degree3;
    if (degree == 4) ++degree4;
  }
  EXPECT_EQ(degree2, 4);       // corners
  EXPECT_EQ(degree3, 4 * 6);   // non-corner boundary
  EXPECT_EQ(degree4, 6 * 6);   // interior
}

TEST(RoadNetworkTest, EdgesAreBidirectionalWithEqualLength) {
  const RoadNetwork net = RoadNetwork::SyntheticMetro(SmallConfig());
  for (int i = 0; i < net.node_count(); ++i) {
    for (const RoadEdge& e : net.edges_from(i)) {
      EXPECT_TRUE(net.HasEdge(e.to, i));
      EXPECT_NEAR(e.length, net.node(i).DistanceTo(net.node(e.to)), 1e-9);
      EXPECT_GT(e.length, 0);
    }
  }
}

TEST(RoadNetworkTest, ContainsAllRoadClasses) {
  const RoadNetwork net = RoadNetwork::SyntheticMetro(SmallConfig());
  bool has_street = false, has_arterial = false, has_highway = false;
  for (int i = 0; i < net.node_count(); ++i) {
    for (const RoadEdge& e : net.edges_from(i)) {
      has_street |= e.road_class == RoadClass::kStreet;
      has_arterial |= e.road_class == RoadClass::kArterial;
      has_highway |= e.road_class == RoadClass::kHighway;
    }
  }
  EXPECT_TRUE(has_street);
  EXPECT_TRUE(has_arterial);
  EXPECT_TRUE(has_highway);
}

TEST(RoadNetworkTest, SpeedRangesSpanPaperInterval) {
  const auto [street_lo, street_hi] =
      RoadNetwork::SpeedRangeMilesPerTick(RoadClass::kStreet);
  const auto [hwy_lo, hwy_hi] =
      RoadNetwork::SpeedRangeMilesPerTick(RoadClass::kHighway);
  EXPECT_NEAR(street_lo, 25.0 / 60.0, 1e-12);  // 25 mph
  EXPECT_NEAR(hwy_hi, 100.0 / 60.0, 1e-12);    // 100 mph
  EXPECT_LT(street_hi, hwy_lo + 0.5);
  const auto [art_lo, art_hi] =
      RoadNetwork::SpeedRangeMilesPerTick(RoadClass::kArterial);
  EXPECT_GT(art_lo, street_lo);
  EXPECT_LT(art_hi, hwy_hi);
}

TEST(RoadNetworkTest, NearestNodeMatchesBruteForce) {
  const RoadNetwork net = RoadNetwork::SyntheticMetro(SmallConfig());
  Rng rng(5);
  for (int iter = 0; iter < 200; ++iter) {
    const Vec2 p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    int best = 0;
    double best_d2 = (net.node(0) - p).Norm2();
    for (int i = 1; i < net.node_count(); ++i) {
      const double d2 = (net.node(i) - p).Norm2();
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
    const int got = net.NearestNode(p);
    EXPECT_NEAR((net.node(got) - p).Norm2(), best_d2, 1e-9);
  }
}

TEST(RoadNetworkTest, HotspotsConfigured) {
  const RoadNetwork net = RoadNetwork::SyntheticMetro(SmallConfig());
  ASSERT_EQ(net.hotspots().size(), 4u);
  for (const Hotspot& h : net.hotspots()) {
    EXPECT_GT(h.radius, 0);
    EXPECT_GT(h.weight, 0);
    EXPECT_GE(h.center.x, 0);
    EXPECT_LE(h.center.x, 100);
  }
  // Zipf weights decrease with rank.
  EXPECT_GT(net.hotspots()[0].weight, net.hotspots()[3].weight);
}

TEST(RoadNetworkTest, SampleEndpointBiasTowardHotspots) {
  const RoadNetwork net = RoadNetwork::SyntheticMetro(SmallConfig());
  Rng rng(13);
  // With full bias, sampled endpoints should concentrate near hotspots.
  int near_hotspot = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const Vec2 p = net.node(net.SampleEndpoint(rng, 1.0));
    for (const Hotspot& h : net.hotspots()) {
      if (p.DistanceTo(h.center) < 4 * h.radius + 20.0) {
        ++near_hotspot;
        break;
      }
    }
  }
  EXPECT_GT(near_hotspot, n / 2);
}

TEST(RoadNetworkTest, SampleEndpointZeroBiasCoversNetwork) {
  const RoadNetwork net = RoadNetwork::SyntheticMetro(SmallConfig());
  Rng rng(14);
  std::vector<int> hits(net.node_count(), 0);
  for (int i = 0; i < 20000; ++i) ++hits[net.SampleEndpoint(rng, 0.0)];
  int covered = 0;
  for (int h : hits) covered += h > 0;
  EXPECT_GT(covered, net.node_count() * 9 / 10);
}

TEST(RoadNetworkTest, DeterministicForSeed) {
  const RoadNetwork a = RoadNetwork::SyntheticMetro(SmallConfig());
  const RoadNetwork b = RoadNetwork::SyntheticMetro(SmallConfig());
  ASSERT_EQ(a.node_count(), b.node_count());
  for (int i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.node(i), b.node(i));
  }
}

}  // namespace
}  // namespace pdr
