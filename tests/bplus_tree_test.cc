#include "pdr/bx/bplus_tree.h"

#include <gtest/gtest.h>

#include <map>

#include "pdr/common/random.h"

namespace pdr {
namespace {

BPlusRecord Rec(uint64_t key) {
  return BPlusRecord{key, static_cast<double>(key), 0, 0, 0, 0,
                     static_cast<ObjectId>(key & 0xFFFF)};
}

class BPlusTreeTest : public ::testing::Test {
 protected:
  BPlusTreeTest() : pool_(&pager_, 512), tree_(&pool_) {}
  MemPager pager_;
  BufferPool pool_;
  BPlusTree tree_;
};

TEST_F(BPlusTreeTest, EmptyTree) {
  EXPECT_EQ(tree_.size(), 0u);
  EXPECT_FALSE(tree_.Find(42, nullptr));
  EXPECT_FALSE(tree_.Delete(42));
  int visited = 0;
  tree_.ScanRange(0, ~0ull, [&](const BPlusRecord&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 0);
  tree_.CheckInvariants();
}

TEST_F(BPlusTreeTest, InsertFindSingle) {
  tree_.Insert(Rec(7));
  BPlusRecord out;
  ASSERT_TRUE(tree_.Find(7, &out));
  EXPECT_EQ(out.key, 7u);
  EXPECT_FALSE(tree_.Find(8, nullptr));
  EXPECT_EQ(tree_.size(), 1u);
}

TEST_F(BPlusTreeTest, ManyInsertsSortedScan) {
  Rng rng(101);
  std::map<uint64_t, bool> reference;
  for (int i = 0; i < 5000; ++i) {
    uint64_t key;
    do {
      key = rng.Next() % 1000000;
    } while (reference.count(key));
    reference[key] = true;
    tree_.Insert(Rec(key));
  }
  EXPECT_EQ(tree_.size(), reference.size());
  EXPECT_GT(tree_.height(), 1);
  tree_.CheckInvariants();

  std::vector<uint64_t> scanned;
  tree_.ScanRange(0, ~0ull, [&](const BPlusRecord& r) {
    scanned.push_back(r.key);
    return true;
  });
  ASSERT_EQ(scanned.size(), reference.size());
  auto it = reference.begin();
  for (size_t i = 0; i < scanned.size(); ++i, ++it) {
    EXPECT_EQ(scanned[i], it->first);
  }
}

TEST_F(BPlusTreeTest, RangeScanMatchesMap) {
  Rng rng(102);
  std::map<uint64_t, bool> reference;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t key = rng.Next() % 100000;
    if (reference.emplace(key, true).second) tree_.Insert(Rec(key));
  }
  for (int q = 0; q < 50; ++q) {
    uint64_t lo = rng.Next() % 100000;
    uint64_t hi = rng.Next() % 100000;
    if (lo > hi) std::swap(lo, hi);
    std::vector<uint64_t> got;
    tree_.ScanRange(lo, hi, [&](const BPlusRecord& r) {
      got.push_back(r.key);
      return true;
    });
    std::vector<uint64_t> want;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first <= hi; ++it) {
      want.push_back(it->first);
    }
    EXPECT_EQ(got, want) << "range [" << lo << ", " << hi << "]";
  }
}

TEST_F(BPlusTreeTest, ScanEarlyStop) {
  for (uint64_t k = 0; k < 100; ++k) tree_.Insert(Rec(k * 2));
  int visited = 0;
  tree_.ScanRange(0, ~0ull, [&](const BPlusRecord&) {
    return ++visited < 10;
  });
  EXPECT_EQ(visited, 10);
}

TEST_F(BPlusTreeTest, DeleteExisting) {
  for (uint64_t k = 0; k < 2000; ++k) tree_.Insert(Rec(k * 3));
  EXPECT_TRUE(tree_.Delete(33));
  EXPECT_FALSE(tree_.Find(33, nullptr));
  EXPECT_FALSE(tree_.Delete(33));
  EXPECT_FALSE(tree_.Delete(34));  // never existed
  EXPECT_EQ(tree_.size(), 1999u);
  tree_.CheckInvariants();
}

TEST_F(BPlusTreeTest, DeleteEverythingThenReuse) {
  for (uint64_t k = 0; k < 3000; ++k) tree_.Insert(Rec(k));
  for (uint64_t k = 0; k < 3000; ++k) EXPECT_TRUE(tree_.Delete(k));
  EXPECT_EQ(tree_.size(), 0u);
  tree_.CheckInvariants();
  // Empty leaves keep routing; reinserts must work.
  for (uint64_t k = 0; k < 3000; k += 7) tree_.Insert(Rec(k));
  tree_.CheckInvariants();
  EXPECT_TRUE(tree_.Find(2996, nullptr));
}

TEST_F(BPlusTreeTest, ChurnKeepsTreeConsistent) {
  Rng rng(103);
  std::map<uint64_t, bool> reference;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 300; ++i) {
      const uint64_t key = rng.Next() % 50000;
      if (rng.Bernoulli(0.6)) {
        if (reference.emplace(key, true).second) tree_.Insert(Rec(key));
      } else {
        if (reference.erase(key)) {
          EXPECT_TRUE(tree_.Delete(key));
        }
      }
    }
    EXPECT_EQ(tree_.size(), reference.size());
  }
  tree_.CheckInvariants();
  for (const auto& [key, unused] : reference) {
    (void)unused;
    EXPECT_TRUE(tree_.Find(key, nullptr)) << key;
  }
}

TEST_F(BPlusTreeTest, SequentialAndReverseInsertion) {
  // Ascending then a second tree descending: both stay consistent.
  for (uint64_t k = 0; k < 4000; ++k) tree_.Insert(Rec(k));
  tree_.CheckInvariants();

  MemPager pager2;
  BufferPool pool2(&pager2, 512);
  BPlusTree tree2(&pool2);
  for (uint64_t k = 4000; k-- > 0;) tree2.Insert(Rec(k));
  tree2.CheckInvariants();
  EXPECT_EQ(tree2.size(), 4000u);
}

TEST_F(BPlusTreeTest, PayloadRoundTrip) {
  MotionState s{{1.5, -2.5}, {0.25, 4.0}, 17};
  tree_.Insert(BPlusRecord::From(99, 1234, s));
  BPlusRecord out;
  ASSERT_TRUE(tree_.Find(99, &out));
  EXPECT_EQ(out.oid, 1234u);
  EXPECT_EQ(out.ToState(), s);
}

TEST_F(BPlusTreeTest, IoChargedThroughBufferPool) {
  for (uint64_t k = 0; k < 20000; ++k) tree_.Insert(Rec(k));
  pool_.Clear();
  pool_.ResetStats();
  int visited = 0;
  tree_.ScanRange(5000, 6000, [&](const BPlusRecord&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 1001);
  EXPECT_GT(pool_.stats().physical_reads, 0);
}

}  // namespace
}  // namespace pdr
