#include "pdr/cheb/cheb_grid.h"

#include <gtest/gtest.h>

#include "pdr/common/random.h"
#include "pdr/core/oracle.h"
#include "pdr/mobility/generator.h"

namespace pdr {
namespace {

ChebGrid::Options SmallOptions() {
  return {.extent = 100.0, .grid_side = 4, .degree = 6, .horizon = 6,
          .l = 10.0};
}

TEST(ChebGridTest, CoefficientAccounting) {
  ChebGrid grid(SmallOptions());
  // 16 cells * (6+1)(6+2)/2 = 16 * 28.
  EXPECT_EQ(grid.CoefficientsPerSlice(), 16u * 28u);
  EXPECT_EQ(grid.ModelBytes(), 7u * 16u * 28u * sizeof(float));
}

TEST(ChebGridTest, InsertRaisesDensityNearObject) {
  ChebGrid grid(SmallOptions());
  const MotionState s{{50, 50}, {0, 0}, 0};
  grid.Apply({0, 1, std::nullopt, s});
  // True density inside the l-square is 1/l^2 = 0.01.
  EXPECT_NEAR(grid.Density(0, {50, 50}), 0.01, 0.005);
  EXPECT_NEAR(grid.Density(0, {90, 10}), 0.0, 0.004);
}

TEST(ChebGridTest, DeleteRestoresExactZero) {
  ChebGrid grid(SmallOptions());
  const MotionState s{{37, 62}, {1.0, -0.5}, 0};
  grid.Apply({0, 1, std::nullopt, s});
  grid.Apply({0, 1, s, std::nullopt});
  for (Tick t = 0; t <= 6; ++t) {
    for (int cell = 0; cell < 16; ++cell) {
      EXPECT_TRUE(grid.CellPoly(t, cell).IsZero()) << "t=" << t;
    }
  }
}

TEST(ChebGridTest, MovingObjectTrackedAcrossTicks) {
  ChebGrid grid(SmallOptions());
  const MotionState s{{10, 50}, {10, 0}, 0};  // crosses cells over horizon
  grid.Apply({0, 1, std::nullopt, s});
  for (Tick t = 0; t <= 6; ++t) {
    const Vec2 p = s.PositionAt(t);
    if (p.x > 95) break;
    EXPECT_GT(grid.Density(t, p), 0.004) << "t=" << t;
  }
}

TEST(ChebGridTest, DensityApproximatesOracleOnClusters) {
  const double extent = 100.0;
  ChebGrid::Options options{.extent = extent, .grid_side = 5, .degree = 6,
                            .horizon = 2, .l = 12.0};
  ChebGrid grid(options);
  Oracle oracle(extent);
  for (const UpdateEvent& e :
       MakeClusteredInserts(1500, 3, extent, 5.0, 0.2, 13)) {
    grid.Apply(e);
    oracle.Apply(e);
  }
  // Compare pointwise density at random probes; the approximation is
  // smooth, so compare averages over many probes plus loose pointwise.
  Rng rng(14);
  double err_sum = 0;
  const int probes = 400;
  const double peak = 1500.0 / (extent * extent) * 30;  // rough scale
  for (int i = 0; i < probes; ++i) {
    const Vec2 p{rng.Uniform(5, 95), rng.Uniform(5, 95)};
    const double truth = oracle.PointDensity(0, p, options.l);
    const double approx = grid.Density(0, p);
    err_sum += std::fabs(truth - approx);
  }
  EXPECT_LT(err_sum / probes, 0.15 * peak);
}

TEST(ChebGridTest, AdvanceRecyclesSlices) {
  ChebGrid grid(SmallOptions());
  const MotionState s{{50, 50}, {0, 0}, 0};
  grid.Apply({0, 1, std::nullopt, s});
  EXPECT_GT(grid.Density(6, {50, 50}), 0.004);
  grid.AdvanceTo(2);
  // New slices (ticks 7, 8) are empty.
  EXPECT_NEAR(grid.Density(7, {50, 50}), 0.0, 1e-12);
  EXPECT_NEAR(grid.Density(8, {50, 50}), 0.0, 1e-12);
  // Still-live slices keep the object.
  EXPECT_GT(grid.Density(3, {50, 50}), 0.004);
}

TEST(ChebGridTest, OutOfDomainPredictionIgnored) {
  ChebGrid grid(SmallOptions());
  // Prediction leaves the domain at t >= 1.
  const MotionState s{{99, 50}, {5, 0}, 0};
  grid.Apply({0, 1, std::nullopt, s});
  EXPECT_GT(grid.Density(0, {99, 50}), 0.004);
  for (int cell = 0; cell < 16; ++cell) {
    EXPECT_TRUE(grid.CellPoly(2, cell).IsZero());
  }
  // And the symmetric delete still restores zero.
  grid.Apply({0, 1, s, std::nullopt});
  for (int cell = 0; cell < 16; ++cell) {
    EXPECT_TRUE(grid.CellPoly(0, cell).IsZero());
  }
}

TEST(ChebGridTest, SquareSpanningMultipleMacroCells) {
  // Object near a macro-cell corner: its l-square spreads over 4 cells;
  // density must be continuous-ish across the seams.
  ChebGrid::Options options = SmallOptions();
  options.degree = 8;
  ChebGrid grid(options);
  const MotionState s{{50, 50}, {0, 0}, 0};  // cell corner at (50,50)
  grid.Apply({0, 1, std::nullopt, s});
  const double d_nw = grid.Density(0, {49, 51});
  const double d_ne = grid.Density(0, {51, 51});
  const double d_sw = grid.Density(0, {49, 49});
  const double d_se = grid.Density(0, {51, 51});
  for (double d : {d_nw, d_ne, d_sw, d_se}) {
    EXPECT_NEAR(d, 0.01, 0.006);
  }
}

TEST(ChebGridTest, QueryDenseFindsCluster) {
  const double extent = 100.0;
  ChebGrid::Options options{.extent = extent, .grid_side = 5, .degree = 6,
                            .horizon = 2, .l = 12.0};
  ChebGrid grid(options);
  const auto events = MakeClusteredInserts(800, 1, extent, 3.0, 0.0, 15);
  for (const UpdateEvent& e : events) grid.Apply(e);
  // Find the cluster center (mean of positions).
  Vec2 center{0, 0};
  for (const UpdateEvent& e : events) center += e.new_state->pos * (1.0 / 800);
  const double rho = 0.2 * 800 / (options.l * options.l) / 25.0;
  BnbStats stats;
  const Region dense = grid.QueryDense(0, rho, 200, &stats);
  EXPECT_FALSE(dense.IsEmpty());
  EXPECT_TRUE(dense.Contains(center))
      << "cluster center " << center.ToString() << " not in dense region";
  EXPECT_GT(stats.pruned_boxes, 0);
  // Far corner must not be dense.
  EXPECT_FALSE(dense.Contains({2, 2}));
}

TEST(ChebGridTest, BnbMatchesGridScan) {
  // Branch-and-bound and the trivial grid scan should agree closely: the
  // B&B leaf resolution equals the scan resolution.
  const double extent = 100.0;
  ChebGrid::Options options{.extent = extent, .grid_side = 4, .degree = 5,
                            .horizon = 2, .l = 12.0};
  ChebGrid grid(options);
  for (const UpdateEvent& e :
       MakeClusteredInserts(600, 2, extent, 4.0, 0.1, 16)) {
    grid.Apply(e);
  }
  const double rho = 1.5 * 600 / (extent * extent);
  const int eval_grid = 128;
  const Region bnb = grid.QueryDense(0, rho, eval_grid);
  const Region scan = grid.QueryDenseGridScan(0, rho, eval_grid);
  // They sample the field differently (box centers may differ), so allow
  // a small relative discrepancy.
  const double sym = SymmetricDifferenceArea(bnb, scan);
  const double base = std::max(1.0, std::max(bnb.Area(), scan.Area()));
  EXPECT_LT(sym / base, 0.15) << "bnb=" << bnb.Area()
                              << " scan=" << scan.Area();
}

TEST(ChebGridTest, BnbVisitsFarFewerPointsThanScan) {
  const double extent = 100.0;
  ChebGrid::Options options{.extent = extent, .grid_side = 4, .degree = 5,
                            .horizon = 2, .l = 12.0};
  ChebGrid grid(options);
  for (const UpdateEvent& e :
       MakeClusteredInserts(600, 1, extent, 3.0, 0.0, 17)) {
    grid.Apply(e);
  }
  const double rho = 3.0 * 600 / (extent * extent);
  BnbStats bnb_stats, scan_stats;
  (void)grid.QueryDense(0, rho, 256, &bnb_stats);
  (void)grid.QueryDenseGridScan(0, rho, 256, &scan_stats);
  // B&B prunes most of the plane: far fewer point evaluations, and its
  // total work (interval bounds + evaluations) stays below a full scan.
  EXPECT_LT(bnb_stats.point_evals, scan_stats.point_evals / 4);
  EXPECT_LT(bnb_stats.point_evals + bnb_stats.nodes_visited,
            scan_stats.point_evals);
}

TEST(ChebGridTest, CoefficientsSurviveFloat32Storage) {
  // ModelBytes() reports deployment storage as float32 per coefficient
  // (the paper's 1.0 MB budget). Validate the assumption behind that
  // accounting: rounding every coefficient to float changes evaluated
  // densities by far less than the approximation error itself.
  ChebGrid grid(SmallOptions());
  for (const UpdateEvent& e :
       MakeClusteredInserts(2000, 3, 100.0, 5.0, 0.2, 20)) {
    grid.Apply(e);
  }
  Rng rng(21);
  const double peak = 2000.0 / (10.0 * 10.0) / 25.0;  // crude scale
  for (int probe = 0; probe < 300; ++probe) {
    const Vec2 p{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const int cell = grid.macro_grid().CellOf(p);
    const Cheb2D& poly = grid.CellPoly(0, cell);
    // Re-evaluate with float-rounded coefficients.
    Cheb2D rounded(poly.degree());
    for (int i = 0; i <= poly.degree(); ++i) {
      for (int j = 0; j <= poly.degree() - i; ++j) {
        rounded.coeff(i, j) =
            static_cast<double>(static_cast<float>(poly.coeff(i, j)));
      }
    }
    const Rect cell_rect = grid.macro_grid().CellRect(cell);
    const double nx = (p.x - cell_rect.x_lo) * 2 / cell_rect.Width() - 1;
    const double ny = (p.y - cell_rect.y_lo) * 2 / cell_rect.Height() - 1;
    EXPECT_NEAR(poly.Eval(nx, ny), rounded.Eval(nx, ny), 1e-5 * peak + 1e-9);
  }
}

TEST(ChebGridTest, HigherRhoNeverGrowsDenseRegion) {
  const double extent = 100.0;
  ChebGrid::Options options{.extent = extent, .grid_side = 4, .degree = 5,
                            .horizon = 2, .l = 12.0};
  ChebGrid grid(options);
  for (const UpdateEvent& e :
       MakeClusteredInserts(900, 2, extent, 4.0, 0.1, 18)) {
    grid.Apply(e);
  }
  const double base_rho = 900.0 / (extent * extent);
  double prev_area = std::numeric_limits<double>::infinity();
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    const double area = grid.QueryDense(0, scale * base_rho, 128).Area();
    EXPECT_LE(area, prev_area + 1e-9);
    prev_area = area;
  }
}

}  // namespace
}  // namespace pdr
