#include "pdr/parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pdr/storage/buffer_pool.h"
#include "pdr/storage/pager.h"

namespace pdr {
namespace {

TEST(ThreadPoolTest, ConstructAndDestroyIdle) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
  }
}

TEST(ThreadPoolTest, ClampsNonPositiveToHardware) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), ThreadPool::HardwareThreads());
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto f = pool.Submit([&] { ran.fetch_add(1); });
  pool.Wait(f);
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    // Flood with more tasks than the single worker can start immediately;
    // graceful shutdown must still run every one.
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, SubmitExceptionSurfacesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Wait(f);
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 4}) {
    for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{7}, int64_t{1000}}) {
      ThreadPool pool(threads);
      std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
      pool.ParallelFor(n, [&](int64_t i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
      });
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "index " << i << " with " << threads << " threads, n=" << n;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](int64_t i) {
                                  ran.fetch_add(1);
                                  if (i == 3) throw std::logic_error("bad");
                                }),
               std::logic_error);
  // Unstarted indices are abandoned after the failure, so the count is
  // anywhere between 1 (thrower only) and 100.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 100);
}

// Regression: waiting on a submitted task from inside a pool task used to
// deadlock a single-worker pool (the only worker blocks on work that has
// no thread left to run it). Help-first stealing makes it finish.
TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlockSingleWorker) {
  ThreadPool pool(1);
  std::atomic<int> inner_ran{0};
  auto outer = pool.Submit([&] {
    auto inner = pool.Submit([&] { inner_ran.fetch_add(1); });
    pool.Wait(inner);
  });
  pool.Wait(outer);
  EXPECT_EQ(inner_ran.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, [&](int64_t) {
    pool.ParallelFor(8, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, RunOnePendingStealsFromQueue) {
  ThreadPool pool(1);
  // Park the worker so the queue backs up. Wait until the worker has
  // actually begun the parking task — otherwise RunOnePending below could
  // steal it instead and spin on `release` forever.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto parked = pool.Submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  std::atomic<int> ran{0};
  auto queued = pool.Submit([&] { ran.fetch_add(1); });
  while (!pool.RunOnePending()) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 1);
  release.store(true);
  pool.Wait(parked);
  pool.Wait(queued);
}

// TSan stress: many tasks hammering shared atomics plus ParallelFor
// overlap. Runs under every build; only the TSan configuration turns
// latent races into failures.
TEST(ThreadPoolTest, StressManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  std::vector<std::future<void>> fs;
  fs.reserve(200);
  for (int i = 0; i < 200; ++i) {
    fs.push_back(pool.Submit([&sum, i] { sum.fetch_add(i); }));
  }
  pool.ParallelFor(500, [&](int64_t) { sum.fetch_add(1); });
  for (auto& f : fs) pool.Wait(f);
  EXPECT_EQ(sum.load(), 199 * 200 / 2 + 500);
}

// TSan stress for the BufferPool's read-mostly phase: concurrent Fetch
// of a working set larger than the pool, so hits, misses, evictions, and
// the loose-frame fallback all interleave.
TEST(ThreadPoolTest, StressBufferPoolReadPhase) {
  MemPager pager;
  std::vector<PageId> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(pager.Allocate());
  BufferPool pool(&pager, 32);
  for (PageId id : ids) pool.Fetch(id);  // warm what fits

  ThreadPool workers(4);
  const IoStats before = pool.stats();
  pool.BeginReadPhase();
  workers.ParallelFor(2000, [&](int64_t i) {
    auto ref = pool.Fetch(ids[static_cast<size_t>(i) % ids.size()]);
    ASSERT_TRUE(static_cast<bool>(ref));
  });
  pool.EndReadPhase();
  const IoStats delta = pool.stats() - before;
  EXPECT_EQ(delta.logical_reads, 2000);
  EXPECT_GE(delta.physical_reads, 0);
  // Phase over: pool must behave normally again.
  pool.Fetch(ids[0]);
  EXPECT_EQ((pool.stats() - before).logical_reads, 2001);
}

// --------------------------------------------------------------------------
// Cooperative cancellation (resilience/deadline.h): runners observe the
// QueryControl between items, so a cancelled ParallelFor drains without
// running the remaining work — and the pool stays fully usable after.

TEST(ThreadPoolTest, ParallelForPreCancelledRunsNoBodies) {
  ThreadPool pool(4);
  CancelToken token;
  token.Cancel();
  QueryControl ctl;
  ctl.token = &token;
  std::atomic<int64_t> executed{0};
  EXPECT_THROW(
      pool.ParallelFor(1000, [&](int64_t) { executed.fetch_add(1); }, &ctl),
      CancelledError);
  EXPECT_EQ(executed.load(), 0);
}

TEST(ThreadPoolTest, ParallelForCancelledMidwayDrainsRemainingWork) {
  ThreadPool pool(4);
  CancelToken token;
  QueryControl ctl;
  ctl.token = &token;
  constexpr int64_t kN = 100000;
  std::atomic<int64_t> executed{0};
  std::vector<std::atomic<int>> seen(kN);
  EXPECT_THROW(pool.ParallelFor(
                   kN,
                   [&](int64_t i) {
                     seen[static_cast<size_t>(i)].fetch_add(1);
                     executed.fetch_add(1);
                     token.Cancel();  // first body to run cancels the query
                   },
                   &ctl),
               CancelledError);
  // Every runner checks the token before claiming its next index, so at
  // most one in-flight body per runner (4 workers + the caller) completes
  // after the cancel — the rest of the range is never touched.
  EXPECT_LT(executed.load(), 64);
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_LE(seen[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolUsableAndDestructibleAfterCancelledParallelFor) {
  std::atomic<int64_t> late_tasks{0};
  {
    ThreadPool pool(2);
    CancelToken token;
    token.Cancel();
    QueryControl ctl;
    ctl.token = &token;
    // Pending Submit work next to a cancelled ParallelFor: the cancelled
    // loop must not poison the queue or the workers.
    std::vector<std::future<void>> fs;
    for (int i = 0; i < 16; ++i) {
      fs.push_back(pool.Submit([&] { late_tasks.fetch_add(1); }));
    }
    EXPECT_THROW(pool.ParallelFor(64, [](int64_t) {}, &ctl), CancelledError);
    std::atomic<int64_t> after{0};
    pool.ParallelFor(64, [&](int64_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 64);
    for (int i = 0; i < 16; ++i) {
      fs.push_back(pool.Submit([&] { late_tasks.fetch_add(1); }));
    }
    // Destroy with whatever is still queued: the destructor drains.
  }
  EXPECT_EQ(late_tasks.load(), 32);
}

TEST(ThreadPoolTest, CancelFromAnotherThreadIsObservedByAllWorkers) {
  ThreadPool pool(4);
  CancelToken token;
  QueryControl ctl;
  ctl.token = &token;
  std::atomic<int64_t> executed{0};
  // An external controller thread — not a ParallelFor runner — cancels
  // while the loop runs; the relaxed sticky flag must still become visible
  // to every runner at its next check.
  std::thread controller([&] {
    while (executed.load() == 0) std::this_thread::yield();
    token.Cancel();
  });
  try {
    pool.ParallelFor(
        1 << 20,
        [&](int64_t) {
          executed.fetch_add(1);
          std::this_thread::yield();
        },
        &ctl);
    ADD_FAILURE() << "expected cancellation";
  } catch (const CancelledError&) {
  }
  controller.join();
  EXPECT_LT(executed.load(), 1 << 20);
}

TEST(ThreadPoolTest, ThreadIoDeltaAttributesPerThread) {
  MemPager pager;
  std::vector<PageId> ids;
  for (int i = 0; i < 16; ++i) ids.push_back(pager.Allocate());
  BufferPool pool(&pager, 32);

  pool.BeginReadPhase();
  ThreadPool workers(2);
  std::atomic<int64_t> attributed{0};
  workers.ParallelFor(16, [&](int64_t i) {
    pool.TakeThreadIoDelta();  // clear this thread's residue
    auto ref = pool.Fetch(ids[static_cast<size_t>(i)]);
    ref.Reset();
    const IoStats mine = pool.TakeThreadIoDelta();
    EXPECT_EQ(mine.logical_reads, 1);
    attributed.fetch_add(mine.logical_reads);
  });
  pool.EndReadPhase();
  EXPECT_EQ(attributed.load(), 16);
  // Outside a phase the thread delta is defined to be empty.
  EXPECT_EQ(pool.TakeThreadIoDelta().logical_reads, 0);
}

}  // namespace
}  // namespace pdr
