#include "pdr/core/explorer.h"

#include <gtest/gtest.h>

#include "pdr/core/oracle.h"
#include "pdr/mobility/generator.h"

namespace pdr {
namespace {

constexpr double kExtent = 100.0;

FrEngine MakeEngine() {
  return FrEngine({.extent = kExtent, .histogram_side = 20, .horizon = 4,
                   .buffer_pages = 64, .io_ms = 10.0});
}

void Feed(FrEngine& fr, const std::vector<Vec2>& positions) {
  for (ObjectId id = 0; id < positions.size(); ++id) {
    fr.Apply({0, id, std::nullopt, MotionState{positions[id], {0, 0}, 0}});
  }
}

TEST(ExplorerTest, EmptyDomainHasZeroPeak) {
  FrEngine fr = MakeEngine();
  const PeakDensity peak = FindPeakDensity(fr, 0, 10.0);
  EXPECT_EQ(peak.count, 0);
  EXPECT_TRUE(peak.region.IsEmpty());
}

TEST(ExplorerTest, KnownStackedPeak) {
  FrEngine fr = MakeEngine();
  // 7 coincident objects at one spot, 2 at another: peak count must be 7.
  std::vector<Vec2> positions(7, Vec2{30, 30});
  positions.push_back({70, 70});
  positions.push_back({71, 71});
  Feed(fr, positions);
  const PeakDensity peak = FindPeakDensity(fr, 0, 10.0);
  EXPECT_EQ(peak.count, 7);
  EXPECT_DOUBLE_EQ(peak.rho, 7.0 / 100.0);
  EXPECT_TRUE(peak.region.Contains({30, 30}));
  EXPECT_FALSE(peak.region.Contains({70, 70}));
  // Logarithmic probe count: ~2*log2(7) + slack, not 7 linear probes...
  EXPECT_LE(peak.probes, 8);
}

TEST(ExplorerTest, PeakMatchesOracleOnClusters) {
  FrEngine fr = MakeEngine();
  Oracle oracle(kExtent);
  const auto events = MakeClusteredInserts(800, 3, kExtent, 4.0, 0.2, 91);
  for (const UpdateEvent& e : events) {
    fr.Apply(e);
    oracle.Apply(e);
  }
  const double l = 8.0;
  const PeakDensity peak = FindPeakDensity(fr, 0, l);
  ASSERT_GT(peak.count, 0);
  // The peak region is exactly the dense region at the peak count...
  const Region at_peak = oracle.DenseRegions(
      0, static_cast<double>(peak.count) / (l * l), l);
  EXPECT_NEAR(SymmetricDifferenceArea(peak.region, at_peak), 0.0, 1e-9);
  // ...and one more object would empty it.
  const Region above = oracle.DenseRegions(
      0, static_cast<double>(peak.count + 1) / (l * l), l);
  EXPECT_TRUE(above.IsEmpty());
  // Every point of the peak region actually attains the peak count.
  for (const Rect& r : peak.region.rects()) {
    EXPECT_GE(oracle.CountInSquare(0, r.Center(), l), peak.count);
  }
}

TEST(ExplorerTest, ProfileBandsAreNested) {
  FrEngine fr = MakeEngine();
  for (const UpdateEvent& e :
       MakeClusteredInserts(1000, 2, kExtent, 5.0, 0.3, 92)) {
    fr.Apply(e);
  }
  const auto bands = DensityProfile(fr, 0, 10.0, {1, 3, 6, 12, 24});
  ASSERT_EQ(bands.size(), 5u);
  for (size_t i = 0; i + 1 < bands.size(); ++i) {
    // Higher threshold => subset.
    EXPECT_NEAR(
        IntersectionArea(bands[i].region, bands[i + 1].region),
        bands[i + 1].region.Area(), 1e-9)
        << "band " << i + 1 << " must nest within band " << i;
    EXPECT_GE(bands[i].region.Area(), bands[i + 1].region.Area());
  }
  EXPECT_DOUBLE_EQ(bands[2].rho, 6.0 / 100.0);
}

TEST(ExplorerTest, ProfileConsistentWithPeak) {
  FrEngine fr = MakeEngine();
  std::vector<Vec2> positions(5, Vec2{50, 50});
  Feed(fr, positions);
  const PeakDensity peak = FindPeakDensity(fr, 0, 10.0);
  EXPECT_EQ(peak.count, 5);
  const auto bands = DensityProfile(fr, 0, 10.0, {5, 6});
  EXPECT_FALSE(bands[0].region.IsEmpty());
  EXPECT_TRUE(bands[1].region.IsEmpty());
}

}  // namespace
}  // namespace pdr
