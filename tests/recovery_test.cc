// Crash-fault sweep over the durable FR engine.
//
// The invariant under test (the durability contract): after a crash at
// ANY injected fault point — every write/fsync boundary in the WAL, the
// data file, and the checkpoint publication, in each of the three crash
// modes — the recovered store answers a seeded FR query suite
// bit-identically (hexfloat transcripts, transcript_util.h) to a
// never-crashed run at the last durable checkpoint:
//
//   crash at or before checkpoint 1's commit flush -> empty-store answers
//   crash at or before checkpoint 2's commit flush -> checkpoint-1 answers
//   crash after it                                 -> checkpoint-2 answers
//
// A fault-free rehearsal run counts the kill points and records the two
// baseline transcripts; the sweep then replays the identical run once per
// (kill point, mode), recovers, and byte-compares. By default torn-write
// and truncated-tail run on every third point (every point gets kClean);
// PDR_CRASH_SWEEP=full — the CI crash-matrix lane — sweeps the full
// matrix.
//
// Boundary semantics: an injected crash loses the failing operation (and
// everything after it) but nothing a previous syscall already wrote — so
// the state flips at the commit batch's *flush write*, one op before its
// fsync. Crashing at the fsync itself leaves the batch on disk and
// recovery correctly surfaces the newer state; a real power cut that
// additionally lost the un-fsynced write is the same on-disk picture as
// crashing at the write op, which the sweep also covers.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "pdr/core/fr_engine.h"
#include "pdr/core/monitor.h"
#include "pdr/mobility/generator.h"
#include "pdr/obs/flight_recorder.h"
#include "pdr/obs/obs.h"
#include "pdr/obs/workload_log.h"
#include "pdr/replay/replayer.h"
#include "pdr/storage/disk_pager.h"
#include "pdr/storage/fault_injector.h"
#include "pdr/storage/page_format.h"
#include "transcript_util.h"

namespace pdr {
namespace {

using test_util::FrSuiteTranscript;

constexpr double kExtent = 400.0;
constexpr int kObjects = 150;
constexpr Tick kU = 8;
constexpr Tick kDuration = 12;
constexpr Tick kPhaseSplit = 6;  // checkpoint 1 after this tick
constexpr double kL = 30.0;

double BaseRho() { return static_cast<double>(kObjects) / (kExtent * kExtent); }

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pdr_recovery_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    dir_ = dir != nullptr ? dir : "/tmp";
  }
  ~TempDir() { std::system(("rm -rf '" + dir_ + "'").c_str()); }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

Dataset MakeWorkload() {
  WorkloadConfig config;
  config.WithExtent(kExtent);
  config.num_objects = kObjects;
  config.max_update_interval = kU;
  config.seed = 99;
  return GenerateDataset(config, kDuration);
}

FrEngine::Options Opts(IndexKind kind, const std::string& dir,
                       FaultInjector* injector) {
  return {.extent = kExtent,
          .histogram_side = 20,
          .horizon = 2 * kU,
          .buffer_pages = 32,
          .io_ms = 10.0,
          .index = kind,
          .max_update_interval = kU,
          .storage_dir = dir,
          .fault_injector = injector};
}

void Replay(const Dataset& ds, Tick from, Tick to, FrEngine* fr) {
  for (Tick now = from; now <= to; ++now) {
    fr->AdvanceTo(now);
    for (const UpdateEvent& e : ds.ticks[now]) fr->Apply(e);
  }
}

// The full to-be-crashed run: build phase 1, checkpoint, build phase 2,
// checkpoint. Every sweep iteration executes exactly this sequence.
void RunBothPhases(const Dataset& ds, FrEngine* fr) {
  Replay(ds, 0, kPhaseSplit, fr);
  fr->Checkpoint();
  Replay(ds, kPhaseSplit + 1, ds.duration(), fr);
  fr->Checkpoint();
}

struct SweepBaseline {
  std::string empty_t;  // answers of a store that never reached checkpoint 1
  std::string a_t;      // answers at checkpoint 1
  std::string b_t;      // answers at checkpoint 2
  int64_t total_ops = 0;
  // Last op whose failure still loses checkpoint N: the flush write of
  // checkpoint N's commit batch. One op later is that batch's fsync, by
  // which point the batch bytes are already in the file.
  int64_t last_old1 = 0;
  int64_t last_old2 = 0;
};

SweepBaseline Rehearse(const Dataset& ds, IndexKind kind) {
  SweepBaseline base;
  {
    FrEngine mem(Opts(kind, "", nullptr));
    base.empty_t = FrSuiteTranscript(&mem, BaseRho(), kL);
  }
  TempDir dir;
  FaultInjector counter;  // never armed: counts the kill points
  FrEngine fr(Opts(kind, dir.path(), &counter));
  Replay(ds, 0, kPhaseSplit, &fr);
  fr.Checkpoint();
  const int64_t ops_before_a = counter.ops_seen();
  base.a_t = FrSuiteTranscript(&fr, BaseRho(), kL);
  // Queries must never touch the files: a transcript consumes no fault
  // points, so the sweep's op numbering matches this rehearsal even
  // though the sweep skips the queries.
  EXPECT_EQ(counter.ops_seen(), ops_before_a);
  Replay(ds, kPhaseSplit + 1, ds.duration(), &fr);
  fr.Checkpoint();
  base.b_t = FrSuiteTranscript(&fr, BaseRho(), kL);
  base.total_ops = counter.ops_seen();

  // Locate the boundaries. The protocol emits exactly two wal.sync ops
  // per checkpoint — the commit-batch fsync and the post-publication
  // WAL-reset fsync — and none while creating the store, so across two
  // checkpoints the commit fsyncs are the 1st and 3rd wal.sync (see
  // disk_pager.h; these assertions pin that shape). The state boundary is
  // the single flush write immediately before each commit fsync: once it
  // completes, the committed batch is in the file and recovery surfaces
  // the new checkpoint whether or not the fsync ever ran.
  std::vector<int64_t> syncs;
  for (int64_t i = 0; i < base.total_ops; ++i) {
    if (counter.op_log()[i] == "wal.sync") syncs.push_back(i);
  }
  EXPECT_EQ(syncs.size(), 4u) << "checkpoint protocol shape changed";
  base.last_old1 = syncs[0] - 1;
  base.last_old2 = syncs[2] - 1;
  EXPECT_EQ(counter.op_log()[base.last_old1], "wal.write");
  EXPECT_EQ(counter.op_log()[base.last_old2], "wal.write");
  return base;
}

class RecoverySweepTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(RecoverySweepTest, EveryKillPointRecoversBitIdentically) {
  const IndexKind kind = GetParam();
  const Dataset ds = MakeWorkload();
  const SweepBaseline base = Rehearse(ds, kind);
  ASSERT_GT(base.total_ops, 0);
  ASSERT_LT(base.last_old1, base.last_old2);

  const char* sweep_env = std::getenv("PDR_CRASH_SWEEP");
  const bool full = sweep_env != nullptr && std::string(sweep_env) == "full";

  int64_t cases = 0;
  for (int64_t k = 0; k < base.total_ops; ++k) {
    std::vector<CrashMode> modes = {CrashMode::kClean};
    if (full || k % 3 == 0) {
      modes.push_back(CrashMode::kTornWrite);
      modes.push_back(CrashMode::kTruncatedTail);
    }
    for (const CrashMode mode : modes) {
      ++cases;
      TempDir dir;
      FaultInjector inject(/*seed=*/1234 + static_cast<uint64_t>(k));
      inject.Arm(k, mode);
      bool crashed = false;
      try {
        FrEngine fr(Opts(kind, dir.path(), &inject));
        RunBothPhases(ds, &fr);
      } catch (const CrashError&) {
        crashed = true;
      }
      ASSERT_TRUE(crashed) << "kill point " << k << " never fired";

      FrEngine recovered(Opts(kind, dir.path(), nullptr));
      const std::string got = FrSuiteTranscript(&recovered, BaseRho(), kL);
      const std::string& want = k <= base.last_old1   ? base.empty_t
                                : k <= base.last_old2 ? base.a_t
                                                      : base.b_t;
      EXPECT_EQ(got, want)
          << "kill point " << k << " (" << inject.op_log()[k] << "), mode "
          << static_cast<int>(mode) << ": recovered store diverges from the "
          << (k <= base.last_old1  ? "empty store"
              : k <= base.last_old2 ? "first checkpoint"
                                    : "second checkpoint");
    }
  }
  // 3 ops to create the store + 13 per checkpoint at this workload; the
  // exact count may drift with the protocol but a collapsed sweep (e.g.
  // injection accidentally disabled) must fail loudly.
  EXPECT_GE(cases, base.total_ops);
}

TEST_P(RecoverySweepTest, RecoveredEngineContinuesToIdenticalFuture) {
  // Crash between the checkpoints, recover at checkpoint 1, then replay
  // phase 2 on the *recovered* engine: it must reach checkpoint-2 answers
  // bit-identically — recovery restores operational state, not just a
  // readable snapshot.
  const IndexKind kind = GetParam();
  const Dataset ds = MakeWorkload();
  const SweepBaseline base = Rehearse(ds, kind);

  TempDir dir;
  FaultInjector inject;
  // Kill checkpoint 2's commit flush: its batch never reaches the file.
  inject.Arm(base.last_old2, CrashMode::kClean);
  try {
    FrEngine fr(Opts(kind, dir.path(), &inject));
    RunBothPhases(ds, &fr);
    FAIL() << "armed crash did not fire";
  } catch (const CrashError&) {
  }

  FrEngine fr(Opts(kind, dir.path(), nullptr));
  ASSERT_TRUE(fr.recovered());
  ASSERT_EQ(FrSuiteTranscript(&fr, BaseRho(), kL), base.a_t);
  Replay(ds, kPhaseSplit + 1, ds.duration(), &fr);
  fr.Checkpoint();
  EXPECT_EQ(FrSuiteTranscript(&fr, BaseRho(), kL), base.b_t);
}

TEST_P(RecoverySweepTest, StaleCheckpointWithDamagedDataHealsFromWalRedo) {
  // The compound failure the trailer layer exists for: a crash after
  // checkpoint 2's durable point (the WAL batch is committed) but before
  // any slot write leaves checkpoint.pdr valid-but-STALE — and then cold
  // bit-rot lands on a data slot while the machine is down. Recovery must
  // detect the damaged slot, heal it from the committed WAL after-image,
  // count it in recovery_stats().pages_repaired, and converge to the
  // checkpoint-2 answers bit-identically.
  const IndexKind kind = GetParam();
  const Dataset ds = MakeWorkload();
  const SweepBaseline base = Rehearse(ds, kind);

  TempDir dir;
  FaultInjector inject;
  // last_old2 is checkpoint 2's commit flush write; +1 is its fsync (the
  // durable point), +2 the first slot write of the converge.
  inject.Arm(base.last_old2 + 2, CrashMode::kClean);
  try {
    FrEngine fr(Opts(kind, dir.path(), &inject));
    RunBothPhases(ds, &fr);
    FAIL() << "armed crash did not fire";
  } catch (const CrashError&) {
  }
  ASSERT_EQ(inject.op_log()[base.last_old2 + 2], "data.write")
      << "checkpoint protocol shape changed";

  // At-rest damage on a slot the committed batch covers (scanning the WAL
  // tells us which pages those are, exactly as recovery will).
  Wal wal(dir.path() + "/wal.log", WalOptions{}, nullptr);
  const Wal::ScanResult scan = wal.Scan();
  ASSERT_FALSE(scan.batches.empty());
  const PageId covered = scan.batches.back().pages.front().id;
  ASSERT_TRUE(FlipBitInFile(dir.path() + "/data.pdr",
                            SlotOffset(covered) + 123, 5));

  FrEngine fr(Opts(kind, dir.path(), nullptr));
  ASSERT_TRUE(fr.recovered());
  const DiskPager* disk = fr.index().disk();
  ASSERT_NE(disk, nullptr);
  EXPECT_GE(disk->recovery_stats().pages_repaired, 1);
  EXPECT_EQ(FrSuiteTranscript(&fr, BaseRho(), kL), base.b_t);
}

TEST_P(RecoverySweepTest, CrashStormDuringRecoveryStillConverges) {
  // Crash mid-checkpoint-2 *after* the durable point, so recovery has
  // redo work (it re-applies the WAL batch and re-publishes the files).
  // Then crash the recovery itself, at increasing depth, until one
  // completes: every intermediate crash state must still recover to
  // checkpoint-2 answers. Recovery must be idempotent under its own
  // failures.
  const IndexKind kind = GetParam();
  const Dataset ds = MakeWorkload();
  const SweepBaseline base = Rehearse(ds, kind);

  TempDir dir;
  FaultInjector inject;
  inject.Arm(base.last_old2 + 2, CrashMode::kTornWrite);
  try {
    FrEngine fr(Opts(kind, dir.path(), &inject));
    RunBothPhases(ds, &fr);
    FAIL() << "armed crash did not fire";
  } catch (const CrashError&) {
  }

  bool completed = false;
  for (int64_t depth = 0; depth < 200 && !completed; ++depth) {
    FaultInjector again(/*seed=*/77 + static_cast<uint64_t>(depth));
    again.Arm(depth, depth % 2 == 0 ? CrashMode::kClean
                                    : CrashMode::kTornWrite);
    try {
      FrEngine fr(Opts(kind, dir.path(), &again));
      // Construction finished: recovery ran past fault point `depth`.
      completed = true;
      EXPECT_EQ(FrSuiteTranscript(&fr, BaseRho(), kL), base.b_t);
    } catch (const CrashError&) {
      // Crashed inside recovery; next attempt digs one op deeper into
      // the (possibly further mutated) crash state.
    }
  }
  EXPECT_TRUE(completed) << "recovery never ran fault-free within 200 ops";
}

INSTANTIATE_TEST_SUITE_P(Indexes, RecoverySweepTest,
                         ::testing::Values(IndexKind::kTprTree,
                                           IndexKind::kBxTree),
                         [](const auto& info) {
                           return info.param == IndexKind::kTprTree ? "Tpr"
                                                                    : "Bx";
                         });

// --------------------------------------------------------------------------
// Transient-fault sweep: the same kill points as the crash sweep, but the
// op *fails then succeeds* (FaultInjector::ArmTransient) instead of
// killing the process. The bounded-retry layer in StorageFile must absorb
// the fault invisibly: the run completes without CrashError, the final
// answers are bit-identical to the fault-free rehearsal, and a reopen
// takes the clean-checkpoint path — no WAL redo, no torn tail. Retries
// must never masquerade as crashes (or vice versa).

class TransientSweepTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(TransientSweepTest, FailThenSucceedAtEveryOpIsInvisible) {
  const IndexKind kind = GetParam();
  const Dataset ds = MakeWorkload();
  const SweepBaseline base = Rehearse(ds, kind);
  ASSERT_GT(base.total_ops, 0);

  const char* sweep_env = std::getenv("PDR_CRASH_SWEEP");
  const bool full = sweep_env != nullptr && std::string(sweep_env) == "full";

  for (int64_t k = 0; k < base.total_ops; k += full ? 1 : 3) {
    TempDir dir;
    FaultInjector inject(/*seed=*/4321 + static_cast<uint64_t>(k));
    // Two consecutive failures: the first retry of op k lands back inside
    // the armed window, so the op must survive repeated faults too.
    inject.ArmTransient(k, /*failures=*/2);
    {
      FrEngine fr(Opts(kind, dir.path(), &inject));
      RunBothPhases(ds, &fr);
      EXPECT_EQ(inject.transient_fired(), 2) << "kill point " << k;
      EXPECT_FALSE(inject.fired()) << "transient fault escalated to a crash";
      EXPECT_EQ(FrSuiteTranscript(&fr, BaseRho(), kL), base.b_t)
          << "kill point " << k << " (" << inject.op_log()[k]
          << "): retried run diverges from the fault-free baseline";
    }
    // Reopen with no injector: the durable state must look like any
    // cleanly checkpointed store. Crash recovery finding redo work here
    // would mean the retries corrupted the commit protocol.
    FrEngine reopened(Opts(kind, dir.path(), nullptr));
    const RecoveryStats& rs = reopened.index().disk()->recovery_stats();
    EXPECT_EQ(rs.batches_applied, 0) << "kill point " << k;
    EXPECT_FALSE(rs.torn_tail) << "kill point " << k;
    EXPECT_EQ(FrSuiteTranscript(&reopened, BaseRho(), kL), base.b_t)
        << "kill point " << k << ": reopened store diverges";
  }
}

INSTANTIATE_TEST_SUITE_P(Indexes, TransientSweepTest,
                         ::testing::Values(IndexKind::kTprTree,
                                           IndexKind::kBxTree),
                         [](const auto& info) {
                           return info.param == IndexKind::kTprTree ? "Tpr"
                                                                    : "Bx";
                         });

TEST(MonitorDurabilityTest, CheckpointHookDrivesCadence) {
  const Dataset ds = MakeWorkload();
  TempDir dir;
  FrEngine fr(Opts(IndexKind::kTprTree, dir.path(), nullptr));
  PdrMonitor monitor(&fr, {.rho = BaseRho(), .l = kL, .lookahead = 2});
  monitor.SetCheckpointHook([&fr] { fr.Checkpoint(); }, /*every_ticks=*/4);

  for (Tick now = 0; now <= ds.duration(); ++now) {
    fr.AdvanceTo(now);
    for (const UpdateEvent& e : ds.ticks[now]) fr.Apply(e);
    monitor.OnTick(now);
  }
  // 13 evaluated ticks at a cadence of 4 -> checkpoints after ticks 3, 7,
  // and 11.
  const DiskPager* disk = fr.index().disk();
  ASSERT_NE(disk, nullptr);
  EXPECT_EQ(disk->checkpoint_stats().checkpoints, 3);
  EXPECT_EQ(disk->epoch(), 3u);
}

// An injected crash must leave a post-mortem behind: with the recorder
// enabled, kOnCrash armed, and a dump directory configured, constructing
// the CrashError itself snapshots the rings into a JSONL + Chrome-trace
// pair — before any catch handler unwinds — so the events leading up to
// the fatal write are on disk even though the process (here: the test)
// survives to recover.
TEST(CrashDumpTest, InjectedCrashWritesFlightRecorderDump) {
  if (!PdrObs::CompiledIn()) GTEST_SKIP() << "observability compiled out";
  const Dataset ds = MakeWorkload();
  TempDir store;
  TempDir dumps;

  FlightRecorder& rec = FlightRecorder::Global();
  rec.Reset();
  rec.Configure({.ring_capacity = 1 << 10,
                 .dump_dir = dumps.path(),
                 .triggers = FlightRecorder::kOnCrash,
                 .max_dumps = 2});
  FlightRecorder::SetEnabled(true);

  FaultInjector inject;
  {
    FrEngine fr(Opts(IndexKind::kTprTree, store.path(), &inject));
    Replay(ds, 0, kPhaseSplit, &fr);
    inject.Arm(inject.ops_seen() + 1, CrashMode::kClean);
    EXPECT_THROW(fr.Checkpoint(), CrashError);
  }
  EXPECT_EQ(rec.dumps_written(), 1);

  // Both halves of the dump pair exist, are named for the crash reason,
  // and the JSONL half recorded WAL traffic from the doomed run.
  const std::string base = dumps.path() + "/fr_000_crash";
  std::FILE* jsonl = std::fopen((base + ".jsonl").c_str(), "rb");
  ASSERT_NE(jsonl, nullptr) << base + ".jsonl";
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), jsonl)) > 0) text.append(buf, n);
  std::fclose(jsonl);
  EXPECT_NE(text.find("wal_append"), std::string::npos);
  std::FILE* trace = std::fopen((base + ".trace.json").c_str(), "rb");
  ASSERT_NE(trace, nullptr) << base + ".trace.json";
  std::fclose(trace);

  // Recovery still works after the dump: the reopened store answers.
  FrEngine recovered(Opts(IndexKind::kTprTree, store.path(), nullptr));
  EXPECT_GE(recovered.Query(kPhaseSplit, BaseRho(), kL).region.size(), 0u);

  FlightRecorder::SetEnabled(false);
  rec.Reset();
  rec.Configure({});
}

// The incident-repro contract end to end: a monitored durable run with
// the workload recorder armed crashes mid-checkpoint; the kOnCrash dump
// hook writes a self-contained bundle; replaying *nothing but that
// bundle* — against freshly built in-memory engines — re-derives every
// recorded tick digest and EXPLAIN signature bit-identically. The digests
// exclude I/O counts precisely so a capture taken against the DiskPager
// store verifies against the in-memory replay.
TEST(CrashDumpTest, CrashBundleReplaysToSameSignatures) {
  if (!PdrObs::CompiledIn()) GTEST_SKIP() << "observability compiled out";
  const Dataset ds = MakeWorkload();
  TempDir store;
  TempDir dumps;
  TempDir bundles;

  FlightRecorder& rec = FlightRecorder::Global();
  rec.Reset();
  rec.Configure({.ring_capacity = 1 << 10,
                 .dump_dir = dumps.path(),
                 .triggers = FlightRecorder::kOnCrash,
                 .max_dumps = 2});
  FlightRecorder::SetEnabled(true);

  // The header must describe the serving config faithfully: the replayer
  // rebuilds its engines from these fields alone.
  WorkloadLogHeader header;
  header.extent = kExtent;
  header.num_objects = kObjects;
  header.max_update_interval = kU;
  header.seed = ds.config.seed;
  header.duration = kDuration;
  header.rho = BaseRho();
  header.l = kL;
  header.lookahead = 2;
  header.every = 2;
  header.histogram_side = 20;
  header.horizon = 2 * kU;
  header.buffer_pages = 32;
  header.io_ms = 10.0;

  FaultInjector inject;
  {
    FrEngine fr(Opts(IndexKind::kTprTree, store.path(), &inject));
    PdrMonitor monitor(&fr, {.rho = BaseRho(), .l = kL, .lookahead = 2});
    WorkloadRecorder recorder(store.path() + "/run.wlog", header);
    monitor.SetRecorder(&recorder);
    recorder.ArmBundles(bundles.path() + "/bundles");

    for (Tick now = 0; now <= kPhaseSplit; ++now) {
      fr.AdvanceTo(now);
      for (const UpdateEvent& e : ds.ticks[now]) fr.Apply(e);
      recorder.OnUpdates(now, ds.ticks[now]);
      if (now % 2 == 0) monitor.OnTick(now);
    }
    inject.Arm(inject.ops_seen() + 1, CrashMode::kClean);
    EXPECT_THROW(fr.Checkpoint(), CrashError);
    // The crash dump fired the hook: one bundle on disk before any catch
    // handler ran.
    EXPECT_EQ(recorder.stats().bundles, 1);
  }

  const std::string bundle = bundles.path() + "/bundles/bundle_000_crash";
  const Replayer replayer = Replayer::FromBundle(bundle);
  const ReplayResult result = replayer.Run({});
  EXPECT_TRUE(result.ok()) << result.mismatch_count << " of " << result.ticks
                           << " ticks diverged";
  EXPECT_EQ(result.ticks, 4);  // OnTick at 0, 2, 4, 6
  size_t i = 0;
  for (const WorkloadLogRecord& r : replayer.log().records) {
    if (r.kind != WorkloadLogRecord::Kind::kTick) continue;
    ASSERT_LT(i, result.replayed.size());
    EXPECT_EQ(result.replayed[i].sig_hash, r.query.sig_hash)
        << "tick " << r.tick;
    ++i;
  }

  FlightRecorder::SetEnabled(false);
  rec.Reset();
  rec.Configure({});
}

}  // namespace
}  // namespace pdr
