// Differential-testing harness for the parallel query paths.
//
// Hundreds of seeded random scenarios assert that (a) the FR engine's
// answer is bit-identical across execution policies — serial, 2, 4, and 8
// threads — down to the exact rectangle sequence and every derived
// counter, (b) the answer matches the brute-force oracle as a point set,
// and (c) the PA engine and its shadow-audit metrics are likewise
// policy-independent and internally consistent.
//
// On failure the harness *shrinks*: it halves the object count while the
// scenario still fails and reports the seed plus the minimal failing
// size, so a reproduction is one line:
//   differential_test --gtest_filter=... (seed and size in the message).

#include <gtest/gtest.h>

#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pdr/common/random.h"
#include "pdr/core/fr_engine.h"
#include "pdr/core/oracle.h"
#include "pdr/core/pa_engine.h"
#include "pdr/fft/fft_engine.h"
#include "pdr/mobility/generator.h"
#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/mvcc/snapshot_query.h"
#include "pdr/obs/audit.h"
#include "pdr/obs/workload_log.h"
#include "pdr/parallel/exec_policy.h"
#include "pdr/replay/replayer.h"
#include "pdr/resilience/executor.h"

namespace pdr {
namespace {

constexpr double kExtent = 200.0;
const int kPolicies[] = {2, 4, 8};

// Exact bitwise comparison of two rectangle sequences (no tolerance: the
// parallel merge is defined to reproduce the serial sequence).
bool SameRects(const Region& a, const Region& b, std::string* why) {
  if (a.size() != b.size()) {
    *why = "rect count " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    const Rect& ra = a.rects()[i];
    const Rect& rb = b.rects()[i];
    if (ra.x_lo != rb.x_lo || ra.y_lo != rb.y_lo || ra.x_hi != rb.x_hi ||
        ra.y_hi != rb.y_hi) {
      std::ostringstream os;
      os << "rect " << i << ": " << ra.ToString() << " vs " << rb.ToString();
      *why = os.str();
      return false;
    }
  }
  return true;
}

struct FrScenario {
  uint64_t seed = 0;
  int objects = 0;
  bool clustered = false;
  int clusters = 1;
  double rho = 0.0;
  double l = 20.0;
  Tick q_t = 0;
};

FrScenario MakeFrScenario(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  FrScenario s;
  s.seed = seed;
  s.objects = static_cast<int>(rng.UniformInt(40, 250));
  s.clustered = rng.NextDouble() < 0.5;
  s.clusters = static_cast<int>(rng.UniformInt(1, 4));
  s.l = rng.Uniform(12.0, 30.0);
  const double rho_scale = rng.Uniform(0.5, 8.0);
  s.rho = rho_scale * s.objects / (kExtent * kExtent);
  s.q_t = static_cast<Tick>(rng.UniformInt(0, 5));
  return s;
}

std::vector<UpdateEvent> FrWorkload(const FrScenario& s, int objects) {
  return s.clustered
             ? MakeClusteredInserts(objects, s.clusters, kExtent, 8.0, 0.3,
                                    s.seed)
             : MakeUniformInserts(objects, kExtent, 1.5, s.seed);
}

// Runs one scenario at the given object count; false (with a reason) on
// any serial/parallel or FR/oracle disagreement.
bool RunFrScenario(const FrScenario& s, int objects, std::string* why) {
  FrEngine fr({.extent = kExtent,
               .histogram_side = 16,
               .horizon = 20,
               .buffer_pages = 64});
  Oracle oracle(kExtent);
  for (const UpdateEvent& e : FrWorkload(s, objects)) {
    fr.Apply(e);
    oracle.Apply(e);
  }

  const auto serial = fr.Query(s.q_t, s.rho, s.l);

  // Oracle check: same point set (decompositions may differ).
  const Region truth = oracle.DenseRegions(s.q_t, s.rho, s.l);
  const double sym = SymmetricDifferenceArea(serial.region, truth);
  if (std::fabs(sym) > 1e-6) {
    *why = "FR vs oracle symmetric difference " + std::to_string(sym);
    return false;
  }

  // Policy check: bit-identical result and counters at every width.
  for (int threads : kPolicies) {
    fr.SetExecPolicy(ExecPolicy::Parallel(threads));
    const auto par = fr.Query(s.q_t, s.rho, s.l);
    std::string detail;
    if (!SameRects(serial.region, par.region, &detail)) {
      *why = "threads=" + std::to_string(threads) + ": " + detail;
      return false;
    }
    if (par.objects_fetched != serial.objects_fetched ||
        par.candidate_cells != serial.candidate_cells ||
        par.accepted_cells != serial.accepted_cells ||
        par.rejected_cells != serial.rejected_cells ||
        par.sweep.dense_rects != serial.sweep.dense_rects ||
        par.sweep.x_strips != serial.sweep.x_strips ||
        par.sweep.y_sweeps != serial.sweep.y_sweeps ||
        par.cost.io.logical_reads != serial.cost.io.logical_reads) {
      *why = "threads=" + std::to_string(threads) + ": counter mismatch";
      return false;
    }
  }
  fr.SetExecPolicy(ExecPolicy::Serial());
  return true;
}

// Shrinks a failing scenario by halving the object count while it still
// fails; reports the minimal failing size with the original seed.
void ShrinkAndFail(const FrScenario& s, const std::string& first_why) {
  int failing = s.objects;
  std::string why = first_why;
  while (failing > 1) {
    const int half = failing / 2;
    std::string half_why;
    if (RunFrScenario(s, half, &half_why)) break;
    failing = half;
    why = half_why;
  }
  ADD_FAILURE() << "seed=" << s.seed << " objects=" << failing
                << " (shrunk from " << s.objects << ") rho=" << s.rho
                << " l=" << s.l << " q_t=" << s.q_t
                << (s.clustered ? " clustered" : " uniform") << ": " << why;
}

TEST(DifferentialTest, FrSerialParallelOracleAgreeAcross160Seeds) {
  for (uint64_t seed = 1; seed <= 160; ++seed) {
    const FrScenario s = MakeFrScenario(seed);
    std::string why;
    if (!RunFrScenario(s, s.objects, &why)) ShrinkAndFail(s, why);
  }
}

// PA scenarios: the approximate engine must also be policy-independent,
// and its shadow-audit verdict (scored against an exact FR replay) must
// be internally consistent and identical at every thread count.
TEST(DifferentialTest, PaSerialParallelAndAuditAgreeAcross40Seeds) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 0x51ed270cULL + 7);
    const int objects = static_cast<int>(rng.UniformInt(40, 250));
    const double l = 25.0;
    const double rho = rng.Uniform(0.5, 4.0) * objects / (kExtent * kExtent);

    PaEngine pa({.extent = kExtent,
                 .poly_side = 4,
                 .degree = 5,
                 .horizon = 10,
                 .l = l,
                 .eval_grid = 64});
    FrEngine fr({.extent = kExtent,
                 .histogram_side = 16,
                 .horizon = 20,
                 .buffer_pages = 64});
    Oracle oracle(kExtent);
    for (const UpdateEvent& e :
         MakeClusteredInserts(objects, 2, kExtent, 10.0, 0.2, seed)) {
      pa.Apply(e);
      fr.Apply(e);
      oracle.Apply(e);
    }

    const auto serial = pa.Query(0, rho);
    ShadowAuditor auditor(&fr, &oracle, {.sample_rate = 1.0, .l = l});
    const AuditVerdict verdict = auditor.Audit(0, rho, serial.region);

    // Audit-metric bounds: precision/recall are area ratios in [0, 1],
    // the overlap can exceed neither side, and Agrees() must coincide
    // with a zero symmetric difference.
    EXPECT_GE(verdict.precision, 0.0) << "seed=" << seed;
    EXPECT_LE(verdict.precision, 1.0 + 1e-9) << "seed=" << seed;
    EXPECT_GE(verdict.recall, 0.0) << "seed=" << seed;
    EXPECT_LE(verdict.recall, 1.0 + 1e-9) << "seed=" << seed;
    EXPECT_GE(verdict.false_reject_frac, -1e-9) << "seed=" << seed;
    EXPECT_LE(verdict.false_reject_frac, 1.0 + 1e-9) << "seed=" << seed;
    EXPECT_LE(verdict.overlap_area,
              std::min(verdict.pa_area, verdict.fr_area) + 1e-6)
        << "seed=" << seed;
    EXPECT_NEAR(verdict.pa_area, serial.region.Area(), 1e-6)
        << "seed=" << seed;

    for (int threads : kPolicies) {
      pa.SetExecPolicy(ExecPolicy::Parallel(threads));
      const auto par = pa.Query(0, rho);
      std::string detail;
      if (!SameRects(serial.region, par.region, &detail)) {
        ADD_FAILURE() << "PA seed=" << seed << " threads=" << threads << ": "
                      << detail;
        continue;
      }
      EXPECT_EQ(par.bnb.nodes_visited, serial.bnb.nodes_visited)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(par.bnb.accepted_boxes, serial.bnb.accepted_boxes)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(par.bnb.pruned_boxes, serial.bnb.pruned_boxes)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(par.bnb.point_evals, serial.bnb.point_evals)
          << "seed=" << seed << " threads=" << threads;
      // The audit scores areas, so identical regions must produce an
      // identical verdict.
      const AuditVerdict v2 = auditor.Audit(0, rho, par.region);
      EXPECT_EQ(v2.precision, verdict.precision)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(v2.recall, verdict.recall)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

// Resilience differential property: with no deadline pressure the ladder
// is a pass-through — a generously-budgeted ResilientExecutor (serial and
// parallel) reproduces the plain engine's answer bit for bit, rectangle
// sequence and counters included, across many seeded scenarios.
TEST(DifferentialTest, GenerousDeadlineBitIdenticalToUnboundedAcross40Seeds) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const FrScenario s = MakeFrScenario(seed);
    FrEngine fr({.extent = kExtent,
                 .histogram_side = 16,
                 .horizon = 20,
                 .buffer_pages = 64});
    for (const UpdateEvent& e : FrWorkload(s, s.objects)) fr.Apply(e);

    const auto plain = fr.Query(s.q_t, s.rho, s.l);
    ResilientExecutor exec(&fr, nullptr, {.deadline_ms = 1e9});
    const TieredResult bounded = exec.Query(s.q_t, s.rho, s.l);
    ASSERT_EQ(bounded.tier, AnswerTier::kExact) << "seed=" << seed;
    EXPECT_FALSE(bounded.timed_out) << "seed=" << seed;
    std::string why;
    if (!SameRects(plain.region, bounded.region, &why)) {
      ADD_FAILURE() << "seed=" << seed << " serial ladder: " << why;
    }

    for (int threads : kPolicies) {
      fr.SetExecPolicy(ExecPolicy::Parallel(threads));
      const TieredResult par = exec.Query(s.q_t, s.rho, s.l);
      ASSERT_EQ(par.tier, AnswerTier::kExact)
          << "seed=" << seed << " threads=" << threads;
      if (!SameRects(plain.region, par.region, &why)) {
        ADD_FAILURE() << "seed=" << seed << " threads=" << threads << ": "
                      << why;
      }
      EXPECT_EQ(par.cost.io.logical_reads, plain.cost.io.logical_reads)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------
// FFT-rung differential lane: with the exact rung disabled and an
// FftDensityEngine attached, the ladder must answer at tier kFft with a
// certain/maybe sandwich around the exact FR answer (the documented error
// bound, DESIGN.md §15), and the answer must be bit-identical — full
// hexfloat transcript — no matter how many threads the FR engine runs on
// (the FFT rung never touches the pool). Shrink-on-failure as above.
// ---------------------------------------------------------------------

std::string FftTranscript(const TieredResult& r) {
  std::ostringstream os;
  os << "tier=" << AnswerTierName(r.tier)
     << " reason=" << DowngradeReasonName(r.downgrade_reason) << " cells="
     << r.explain.accepted_cells << '/' << r.explain.candidate_cells << '/'
     << r.explain.rejected_cells << " region=" << std::hexfloat;
  for (const Rect& rect : r.region.rects()) {
    os << '[' << rect.x_lo << ',' << rect.y_lo << ',' << rect.x_hi << ','
       << rect.y_hi << ']';
  }
  os << " maybe=";
  for (const Rect& rect : r.maybe_region.rects()) {
    os << '[' << rect.x_lo << ',' << rect.y_lo << ',' << rect.x_hi << ','
       << rect.y_hi << ']';
  }
  return os.str();
}

bool RunFftRungScenario(const FrScenario& s, int objects, std::string* why) {
  FrEngine fr({.extent = kExtent,
               .histogram_side = 16,
               .horizon = 20,
               .buffer_pages = 64});
  FftDensityEngine fft({.extent = kExtent, .grid = 64, .horizon = 20});
  for (const UpdateEvent& e : FrWorkload(s, objects)) {
    fr.Apply(e);
    fft.Apply(e);
  }

  const Region exact = fr.Query(s.q_t, s.rho, s.l).region;
  ResilientExecutor exec(&fr, nullptr, {.enable_exact = false}, &fft);
  const TieredResult serial = exec.Query(s.q_t, s.rho, s.l);
  if (serial.tier != AnswerTier::kFft) {
    *why = std::string("tier ") + AnswerTierName(serial.tier) + " != fft";
    return false;
  }
  if (serial.downgrade_reason != DowngradeReason::kDisabled) {
    *why = std::string("reason ") +
           DowngradeReasonName(serial.downgrade_reason) + " != disabled";
    return false;
  }

  // The documented bound: accepts subset exact subset accepts+candidates
  // (containment by area; the raster's closed edges differ from the
  // report grid's half-open edges on a measure-zero set).
  const double below = RegionDifference(serial.region, exact).Area();
  if (below > 1e-6) {
    *why = "fft accepts escape exact FR by area " + std::to_string(below);
    return false;
  }
  const double above = RegionDifference(exact, serial.maybe_region).Area();
  if (above > 1e-6) {
    *why = "exact FR escapes fft maybe region by area " +
           std::to_string(above);
    return false;
  }

  // Thread-count invariance, transcript-exact: the FR engine's pool width
  // must not perturb the FFT rung in any bit.
  const std::string want = FftTranscript(serial);
  for (int threads : kPolicies) {
    fr.SetExecPolicy(ExecPolicy::Parallel(threads));
    const std::string got = FftTranscript(exec.Query(s.q_t, s.rho, s.l));
    if (got != want) {
      *why = "threads=" + std::to_string(threads) +
             ": transcript diverged\n  want " + want + "\n  got  " + got;
      return false;
    }
  }
  fr.SetExecPolicy(ExecPolicy::Serial());
  return true;
}

void FftShrinkAndFail(const FrScenario& s, const std::string& first_why) {
  int failing = s.objects;
  std::string why = first_why;
  while (failing > 1) {
    const int half = failing / 2;
    std::string half_why;
    if (RunFftRungScenario(s, half, &half_why)) break;
    failing = half;
    why = half_why;
  }
  ADD_FAILURE() << "seed=" << s.seed << " objects=" << failing
                << " (shrunk from " << s.objects << ") rho=" << s.rho
                << " l=" << s.l << " q_t=" << s.q_t
                << (s.clustered ? " clustered" : " uniform") << ": " << why;
}

TEST(DifferentialTest, FftRungSandwichesExactFrAcross200Seeds) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const FrScenario s = MakeFrScenario(seed);
    std::string why;
    if (!RunFftRungScenario(s, s.objects, &why)) FftShrinkAndFail(s, why);
  }
}

// EXPLAIN provenance property: the deterministic part of the plan record
// (tier, stage names and completion flags, candidate/accept/reject and
// sweep counters — everything except wall-clock timings, IO, and the
// query id) is identical whether the engine ran serially or on 2/4/8
// worker threads. A thread-dependent signature would make EXPLAIN output
// useless for regression diffing, so this is asserted across many seeds.
TEST(DifferentialTest, ExplainSignatureEquivalentAcrossThreadCounts) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const FrScenario s = MakeFrScenario(seed);
    FrEngine fr({.extent = kExtent,
                 .histogram_side = 16,
                 .horizon = 20,
                 .buffer_pages = 64});
    for (const UpdateEvent& e : FrWorkload(s, s.objects)) fr.Apply(e);

    ResilientExecutor exec(&fr, nullptr, {.deadline_ms = 1e9});
    const TieredResult serial = exec.Query(s.q_t, s.rho, s.l);
    ASSERT_EQ(serial.tier, AnswerTier::kExact) << "seed=" << seed;
    const std::string want = serial.explain.DeterministicSignature();
    EXPECT_NE(want.find("tier=exact"), std::string::npos) << want;

    for (int threads : kPolicies) {
      fr.SetExecPolicy(ExecPolicy::Parallel(threads));
      const TieredResult par = exec.Query(s.q_t, s.rho, s.l);
      EXPECT_EQ(par.explain.DeterministicSignature(), want)
          << "seed=" << seed << " threads=" << threads;
    }
    fr.SetExecPolicy(ExecPolicy::Serial());
  }
}

// Workload-capture differential property: a recorded monitoring run
// replays bit-identically — every tick digest and EXPLAIN signature hash
// — at 2, 4, and 8 threads. This is the replay feature's whole claim
// (any captured incident becomes a cross-thread-count differential test),
// so it gets the same seeded-sweep treatment as the query paths above.
TEST(DifferentialTest, ReplayVerifyBitIdenticalAcrossThreadCounts) {
  char tmpl[] = "/tmp/pdr_diff_replay_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadConfig config;
    config.WithExtent(kExtent);
    config.num_objects = 100 + static_cast<int>(seed) * 20;
    config.max_update_interval = 5;
    config.seed = seed * 31 + 7;
    const Dataset ds = GenerateDataset(config, 8);

    WorkloadLogHeader header;
    header.rho = 2.0 * config.num_objects / (kExtent * kExtent);
    header.l = 25.0;
    header.lookahead = 2;
    header.every = 2;
    header.histogram_side = 16;
    header.horizon = 10;
    header.buffer_pages = 64;
    const std::string path =
        std::string(dir) + "/seed" + std::to_string(seed) + ".wlog";
    RecordDataset(ds, path, header);

    const Replayer replayer = Replayer::FromFile(path);
    for (int threads : kPolicies) {
      ReplayOptions options;
      options.threads = threads;
      const ReplayResult result = replayer.Run(options);
      EXPECT_TRUE(result.ok())
          << "seed=" << seed << " threads=" << threads << ": "
          << result.mismatch_count << " of " << result.ticks
          << " ticks diverged";
    }
  }
  std::system(("rm -rf '" + std::string(dir) + "'").c_str());
}

// Calibrated quality floor on one fixed, heavily clustered workload: PA
// with a fine evaluation grid must find most of the truly dense area and
// not hallucinate much. Loose bounds — this guards against gross
// regressions in the PA-vs-FR agreement, not approximation noise.
TEST(DifferentialTest, PaQualityFloorOnClusteredWorkload) {
  const double l = 25.0;
  PaEngine pa({.extent = kExtent,
               .poly_side = 4,
               .degree = 6,
               .horizon = 10,
               .l = l,
               .eval_grid = 128});
  FrEngine fr({.extent = kExtent,
               .histogram_side = 16,
               .horizon = 20,
               .buffer_pages = 64});
  Oracle oracle(kExtent);
  for (const UpdateEvent& e :
       MakeClusteredInserts(600, 2, kExtent, 12.0, 0.1, 2027)) {
    pa.Apply(e);
    fr.Apply(e);
    oracle.Apply(e);
  }
  const double rho = 1.5 * 600 / (kExtent * kExtent);
  const auto result = pa.Query(0, rho);
  ShadowAuditor auditor(&fr, &oracle, {.sample_rate = 1.0, .l = l});
  const AuditVerdict verdict = auditor.Audit(0, rho, result.region);
  ASSERT_GT(verdict.fr_area, 0.0) << "workload not dense enough to score";
  EXPECT_GE(verdict.recall, 0.3) << "PA missed most of the dense area";
  EXPECT_GE(verdict.precision, 0.3) << "PA mostly hallucinated density";
}

// ---------------------------------------------------------------------
// MVCC differential: seeded mixed update/query schedules, snapshot reads
// vs serialized execution, at serial / 2 / 4 / 8 reader threads, with the
// same shrink-on-failure reporting as the FR harness above. The deep
// per-interleaving transcript harness lives in mvcc_interleave_test.cc;
// this section sweeps many more schedules with a cheaper digest.
// ---------------------------------------------------------------------

const int kMvccReaderCounts[] = {0, 2, 4, 8};  // 0 = serial (inline)

std::string MvccTranscript(const FrEngine::QueryResult& r, Tick q_t) {
  std::ostringstream os;
  os << "q_t=" << q_t << " cells=" << r.accepted_cells << '/'
     << r.candidate_cells << '/' << r.rejected_cells << " fetched="
     << r.objects_fetched << " dense=" << r.sweep.dense_rects
     << " logical=" << r.cost.io.logical_reads << " region=" << std::hexfloat;
  for (const Rect& rect : r.region.rects()) {
    os << '[' << rect.x_lo << ',' << rect.y_lo << ',' << rect.x_hi << ','
       << rect.y_hi << ']';
  }
  return os.str();
}

struct MvccScenario {
  uint64_t seed = 0;
  int objects = 0;
  Tick duration = 0;
  double rho = 0.0;
  double l = 20.0;
};

MvccScenario MakeMvccScenario(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 13);
  MvccScenario s;
  s.seed = seed;
  s.objects = static_cast<int>(rng.UniformInt(60, 200));
  s.duration = static_cast<Tick>(rng.UniformInt(6, 14));
  s.l = rng.Uniform(15.0, 30.0);
  s.rho = rng.Uniform(1.0, 6.0) * s.objects / (kExtent * kExtent);
  return s;
}

// One scenario at one reader count: per tick the writer applies the
// seeded batch, commits an epoch, records the serialized transcript for
// each scheduled query, and pins a snapshot the readers race later
// commits to answer. False (with a reason) on the first divergence.
bool RunMvccScenario(const MvccScenario& s, int objects, int readers,
                     std::string* why) {
  mvcc::SnapshotManager snapshots;
  FrEngine fr({.extent = kExtent,
               .histogram_side = 16,
               .horizon = 24,
               .buffer_pages = 64,
               .max_update_interval = 6,
               .snapshots = &snapshots});
  WorkloadConfig config;
  config.WithExtent(kExtent);
  config.num_objects = objects;
  config.max_update_interval = 6;
  config.seed = s.seed * 101 + 3;
  const Dataset ds = GenerateDataset(config, s.duration);
  Rng rng(s.seed * 0x9E3779B97F4A7C15ULL + 29);

  struct Work {
    mvcc::Snapshot snap;
    Tick q_t = 0;
    std::string expected;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Work> queue;
  bool writer_done = false;
  std::string failure;

  auto run_one = [&](Work& w) {
    const mvcc::Epoch epoch = w.snap.epoch();
    const std::string got =
        MvccTranscript(mvcc::SnapshotFrQuery(fr, w.snap, w.q_t, s.rho, s.l),
                       w.q_t);
    w.snap.Release();
    if (got != w.expected) {
      std::lock_guard<std::mutex> lock(mu);
      if (failure.empty()) {
        failure = "epoch " + std::to_string(epoch) + " diverged: want " +
                  w.expected + " got " + got;
      }
    }
  };
  auto reader_loop = [&] {
    for (;;) {
      Work w;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !queue.empty() || writer_done; });
        if (queue.empty()) return;
        w = std::move(queue.front());
        queue.pop_front();
      }
      run_one(w);
    }
  };
  std::vector<std::thread> pool;
  for (int r = 0; r < readers; ++r) pool.emplace_back(reader_loop);

  for (Tick now = 0; now <= ds.duration(); ++now) {
    fr.AdvanceTo(now);
    for (const UpdateEvent& e : ds.ticks[now]) fr.Apply(e);
    fr.PrepareCommit();
    snapshots.Commit({fr.CaptureState(), nullptr});
    const int queries = static_cast<int>(rng.UniformInt(0, 2));
    for (int q = 0; q < queries; ++q) {
      Work w;
      w.q_t = now + static_cast<Tick>(rng.UniformInt(0, 5));
      w.expected = MvccTranscript(fr.Query(w.q_t, s.rho, s.l), w.q_t);
      w.snap = snapshots.Pin();
      if (readers == 0) {
        run_one(w);
      } else {
        {
          std::lock_guard<std::mutex> lock(mu);
          queue.push_back(std::move(w));
        }
        cv.notify_one();
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    writer_done = true;
  }
  cv.notify_all();
  for (std::thread& t : pool) t.join();
  if (!failure.empty()) {
    *why = "readers=" + std::to_string(readers) + ": " + failure;
    return false;
  }
  return true;
}

void ShrinkAndFailMvcc(const MvccScenario& s, int readers,
                       const std::string& first_why) {
  int failing = s.objects;
  std::string why = first_why;
  while (failing > 1) {
    const int half = failing / 2;
    std::string half_why;
    if (RunMvccScenario(s, half, readers, &half_why)) break;
    failing = half;
    why = half_why;
  }
  ADD_FAILURE() << "mvcc seed=" << s.seed << " objects=" << failing
                << " (shrunk from " << s.objects << ") rho=" << s.rho
                << " l=" << s.l << " duration=" << s.duration << ": " << why;
}

TEST(DifferentialTest, MvccSnapshotsMatchSerializedAcrossSeededSchedules) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    const MvccScenario s = MakeMvccScenario(seed);
    // Serial for every schedule; threaded sweeps rotate the reader count
    // per seed to keep the suite fast without losing width coverage.
    std::string why;
    if (!RunMvccScenario(s, s.objects, /*readers=*/0, &why)) {
      ShrinkAndFailMvcc(s, 0, why);
      continue;
    }
    const int readers = kMvccReaderCounts[1 + (seed % 3)];
    if (!RunMvccScenario(s, s.objects, readers, &why)) {
      ShrinkAndFailMvcc(s, readers, why);
    }
  }
}

// Concurrent captures are replay-verifiable like serialized ones: a
// RecordConcurrentDataset log must verify bit-identically at every
// replay thread count (the concurrent verify path re-derives serialized
// references per epoch; options.threads must not change the verdict).
TEST(DifferentialTest, MvccConcurrentCaptureVerifiesAcrossThreadCounts) {
  char tmpl[] = "/tmp/pdr_diff_mvcc_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    WorkloadConfig config;
    config.WithExtent(kExtent);
    config.num_objects = 90 + static_cast<int>(seed) * 25;
    config.max_update_interval = 5;
    config.seed = seed * 53 + 11;
    const Dataset ds = GenerateDataset(config, 8);

    WorkloadLogHeader header;
    header.rho = 2.0 * config.num_objects / (kExtent * kExtent);
    header.l = 25.0;
    header.lookahead = 2;
    header.every = 2;
    header.histogram_side = 16;
    header.horizon = 10;
    header.buffer_pages = 64;
    const std::string path =
        std::string(dir) + "/mvcc" + std::to_string(seed) + ".wlog";
    RecordConcurrentDataset(ds, path, header, /*queries_per_tick=*/2);

    const Replayer replayer = Replayer::FromFile(path);
    ASSERT_TRUE(replayer.concurrent());
    for (int threads : {1, 2, 4, 8}) {
      ReplayOptions options;
      options.threads = threads;
      const ReplayResult result = replayer.Run(options);
      EXPECT_TRUE(result.ok())
          << "mvcc seed=" << seed << " threads=" << threads << ": "
          << result.mismatch_count << " of " << result.ticks
          << " ticks diverged";
    }
  }
  std::system(("rm -rf '" + std::string(dir) + "'").c_str());
}

}  // namespace
}  // namespace pdr
