// Replayer tests: verify-mode bit-identity against a fresh capture,
// divergence detection when the log's digests are tampered with, bench
// percentiles, thread-count overrides, and bundle loading.
//
// The strong claim under test is the whole feature's value proposition:
// re-driving a captured workload through freshly built engines reproduces
// every tick digest and EXPLAIN signature bit-for-bit, at any thread
// count. If that ever breaks, an incident bundle no longer reproduces the
// incident and the CI perf gate measures a different workload than it
// thinks it does.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "pdr/mobility/generator.h"
#include "pdr/obs/workload_log.h"
#include "pdr/replay/replayer.h"

namespace pdr {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pdr_replay_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    dir_ = dir != nullptr ? dir : "/tmp";
  }
  ~TempDir() { std::system(("rm -rf '" + dir_ + "'").c_str()); }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

Dataset SmallDataset(uint64_t seed = 23) {
  WorkloadConfig config;
  config.WithExtent(300.0);
  config.num_objects = 120;
  config.max_update_interval = 6;
  config.seed = seed;
  return GenerateDataset(config, 10);
}

WorkloadLogHeader SmallHeader() {
  WorkloadLogHeader h;
  h.rho = 100.0 / (300.0 * 300.0);
  h.l = 40.0;
  h.lookahead = 3;
  h.every = 2;
  h.histogram_side = 20;
  h.horizon = 12;
  h.buffer_pages = 32;
  return h;
}

std::string RecordSmallRun(const std::string& dir, uint64_t seed = 23) {
  const std::string path = dir + "/run.wlog";
  RecordDataset(SmallDataset(seed), path, SmallHeader());
  return path;
}

TEST(ReplayTest, VerifyModeReproducesEveryDigest) {
  TempDir dir;
  const Replayer replayer = Replayer::FromFile(RecordSmallRun(dir.path()));
  const ReplayResult result = replayer.Run({});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.mismatch_count, 0);
  EXPECT_EQ(result.ticks, 6);
  EXPECT_GT(result.updates, 0);
  EXPECT_EQ(result.threads, 1);  // header recorded a serial run
  EXPECT_EQ(static_cast<int64_t>(result.replayed.size()), result.ticks);
}

TEST(ReplayTest, VerifyModeFlagsTamperedDigests) {
  TempDir dir;
  WorkloadLog log = WorkloadLog::Load(RecordSmallRun(dir.path()));
  int tampered = 0;
  for (WorkloadLogRecord& rec : log.records) {
    if (rec.kind != WorkloadLogRecord::Kind::kTick) continue;
    if (++tampered > 2) break;
    rec.query.digest ^= 0xdeadbeefULL;  // claim a different answer
  }
  ASSERT_GE(tampered, 2);

  const Replayer replayer{std::move(log)};
  const ReplayResult result = replayer.Run({});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.mismatch_count, 2);
  ASSERT_EQ(result.mismatches.size(), 2u);
  EXPECT_NE(result.mismatches[0].want_digest,
            result.mismatches[0].got_digest);
  // The replay's own digests (not the tampered claims) are self-consistent:
  // the same ticks replayed again produce the same values.
  const ReplayResult again = replayer.Run({});
  ASSERT_EQ(again.replayed.size(), result.replayed.size());
  for (size_t i = 0; i < again.replayed.size(); ++i) {
    EXPECT_EQ(again.replayed[i].digest, result.replayed[i].digest);
    EXPECT_EQ(again.replayed[i].sig_hash, result.replayed[i].sig_hash);
  }
}

std::string RecordConcurrentRun(const std::string& dir, uint64_t seed = 23) {
  const std::string path = dir + "/mvcc.wlog";
  RecordConcurrentDataset(SmallDataset(seed), path, SmallHeader(),
                          /*queries_per_tick=*/2);
  return path;
}

TEST(ReplayTest, ConcurrentCaptureVerifiesBitIdentical) {
  TempDir dir;
  const Replayer replayer =
      Replayer::FromFile(RecordConcurrentRun(dir.path()));
  ASSERT_TRUE(replayer.concurrent());
  const ReplayResult result = replayer.Run({});
  EXPECT_TRUE(result.ok()) << result.mismatch_count << " of "
                           << result.ticks << " ticks diverged";
  // Cadence 2 over duration 10 -> 6 evaluated ticks x 2 snapshot queries.
  EXPECT_EQ(result.ticks, 12);
  EXPECT_GT(result.updates, 0);
}

TEST(ReplayTest, ConcurrentVerifyFlagsTamperedSnapshotDigest) {
  TempDir dir;
  WorkloadLog log = WorkloadLog::Load(RecordConcurrentRun(dir.path()));
  int tampered = 0;
  for (WorkloadLogRecord& rec : log.records) {
    if (rec.kind != WorkloadLogRecord::Kind::kTick) continue;
    if (++tampered > 1) break;
    rec.query.digest ^= 0xdeadbeefULL;
  }
  ASSERT_EQ(tampered, 2);  // loop breaks on the second tick record

  const ReplayResult result = Replayer{std::move(log)}.Run({});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.mismatch_count, 1);
  ASSERT_FALSE(result.mismatches.empty());
  EXPECT_NE(result.mismatches[0].want_digest,
            result.mismatches[0].got_digest);
}

TEST(ReplayTest, ConcurrentVerifyRejectsEpochWithoutUpdatesRecord) {
  // A tick record pinned to an epoch the log has no updates record for
  // cannot be re-derived; the capture is incomplete and must fail rather
  // than verify vacuously.
  TempDir dir;
  WorkloadLog log = WorkloadLog::Load(RecordConcurrentRun(dir.path()));
  const int64_t total_ticks = [&] {
    int64_t n = 0;
    for (const WorkloadLogRecord& rec : log.records) {
      if (rec.kind == WorkloadLogRecord::Kind::kTick) ++n;
    }
    return n;
  }();
  for (WorkloadLogRecord& rec : log.records) {
    if (rec.kind != WorkloadLogRecord::Kind::kTick) continue;
    rec.epoch += 1000;  // orphan every snapshot answer
    rec.query.epoch += 1000;
  }
  const ReplayResult result = Replayer{std::move(log)}.Run({});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.mismatch_count, total_ticks);
}

TEST(ReplayTest, MismatchReportingIsCapped) {
  TempDir dir;
  WorkloadLog log = WorkloadLog::Load(RecordSmallRun(dir.path()));
  int64_t ticks = 0;
  for (WorkloadLogRecord& rec : log.records) {
    if (rec.kind != WorkloadLogRecord::Kind::kTick) continue;
    ++ticks;
    rec.query.digest ^= 1ULL;
  }
  ASSERT_GT(ticks, 2);

  ReplayOptions options;
  options.max_reported_mismatches = 2;
  const ReplayResult result = Replayer{std::move(log)}.Run(options);
  EXPECT_EQ(result.mismatch_count, ticks);  // all counted...
  EXPECT_EQ(result.mismatches.size(), 2u);  // ...first two detailed
}

TEST(ReplayTest, ThreadOverrideStaysBitIdentical) {
  TempDir dir;
  const Replayer replayer = Replayer::FromFile(RecordSmallRun(dir.path()));
  for (int threads : {2, 4}) {
    ReplayOptions options;
    options.threads = threads;
    const ReplayResult result = replayer.Run(options);
    EXPECT_TRUE(result.ok()) << "threads=" << threads << " diverged with "
                             << result.mismatch_count << " mismatches";
    EXPECT_EQ(result.threads, threads);
  }
}

TEST(ReplayTest, BenchModeReportsOrderedPercentilesAndTierMix) {
  TempDir dir;
  const Replayer replayer = Replayer::FromFile(RecordSmallRun(dir.path()));
  ReplayOptions options;
  options.mode = ReplayOptions::Mode::kBench;
  const ReplayResult result = replayer.Run(options);
  EXPECT_EQ(result.mismatch_count, 0);  // bench mode never compares
  EXPECT_GT(result.total_ms, 0.0);
  EXPECT_GE(result.p50_ms, 0.0);
  EXPECT_LE(result.p50_ms, result.p95_ms);
  EXPECT_LE(result.p95_ms, result.p99_ms);
  EXPECT_GE(result.total_ms, result.p99_ms);
  // The throttling-proof CPU twins the regression gate compares.
  EXPECT_GE(result.p50_cpu_ms, 0.0);
  EXPECT_LE(result.p50_cpu_ms, result.p95_cpu_ms);
  EXPECT_LE(result.p95_cpu_ms, result.p99_cpu_ms);
  EXPECT_GE(result.total_cpu_ms, result.p99_cpu_ms);
  int64_t tier_sum = 0;
  for (int64_t c : result.tier_counts) tier_sum += c;
  EXPECT_EQ(tier_sum, result.ticks);
  EXPECT_EQ(result.tier_counts[0], result.ticks);  // no-deadline run: exact
}

TEST(ReplayTest, FromBundleVerifiesTheCapturedPrefix) {
  TempDir dir;
  const std::string path = dir.path() + "/run.wlog";
  const Dataset ds = SmallDataset();
  RecordDataset(ds, path, SmallHeader(), dir.path() + "/bundles");

  // RecordDataset armed bundles but nothing crashed; write one explicitly
  // from a fresh recorder over the same workload, after the full run.
  {
    WorkloadLogHeader header = SmallHeader();
    const std::string path2 = dir.path() + "/run2.wlog";
    RecordDataset(ds, path2, header);
    WorkloadLog log = WorkloadLog::Load(path2);
    WorkloadRecorder recorder(dir.path() + "/run3.wlog", log.header);
    recorder.ArmBundles(dir.path() + "/bundles");
    // Re-append the captured stream so the bundle holds the full run.
    for (const WorkloadLogRecord& rec : log.records) {
      if (rec.kind == WorkloadLogRecord::Kind::kUpdates) {
        recorder.OnUpdates(rec.tick, rec.updates);
      }
    }
    recorder.WriteBundle("replay_test", FlightRecorder::DumpInfo{});
  }

  const std::string bundle = dir.path() + "/bundles/bundle_000_replay_test";
  const Replayer replayer = Replayer::FromBundle(bundle);
  const ReplayResult result = replayer.Run({});
  // The hand-built bundle has updates but no tick records: replay drives
  // the engines through the whole stream and has nothing to diverge from.
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.ticks, 0);
  EXPECT_EQ(result.updates,
            static_cast<int64_t>(SmallDataset().TotalUpdates()));
  EXPECT_THROW(Replayer::FromBundle(dir.path() + "/nope"),
               std::runtime_error);
}

TEST(ReplayTest, RecorderDrivenBundleReplaysToSameSignatures) {
  TempDir dir;
  const std::string path = dir.path() + "/run.wlog";
  const Dataset ds = SmallDataset();
  WorkloadLogHeader header = SmallHeader();
  // Full recorded run, then an explicit end-of-run bundle: the bundle's
  // log equals the live log, so verify must pass on the bundle too.
  {
    header.extent = ds.config.extent;
    header.num_objects = ds.config.num_objects;
    header.max_update_interval = static_cast<int32_t>(ds.config.max_update_interval);
    header.seed = ds.config.seed;
    header.duration = static_cast<int32_t>(ds.duration());
    const WorkloadRecorder::Stats stats =
        RecordDataset(ds, path, header, dir.path() + "/bundles");
    EXPECT_EQ(stats.bundles, 0);  // nothing dumped during the healthy run
  }
  WorkloadLog log = WorkloadLog::Load(path);
  WorkloadRecorder recorder(dir.path() + "/tail.wlog", log.header);
  recorder.ArmBundles(dir.path() + "/bundles");
  const std::string bundle =
      recorder.WriteBundle("end_of_run", FlightRecorder::DumpInfo{});
  // The explicit bundle copied tail.wlog (header only); point replay at
  // the real capture instead to prove FromFile(log in a bundle layout)
  // equals FromFile(original).
  const ReplayResult from_file = Replayer::FromFile(path).Run({});
  EXPECT_TRUE(from_file.ok());
  const WorkloadLog bundled = WorkloadLog::Load(BundleWorkloadLog(bundle));
  EXPECT_DOUBLE_EQ(bundled.header.extent, log.header.extent);
  EXPECT_EQ(bundled.header.seed, log.header.seed);
}

}  // namespace
}  // namespace pdr
