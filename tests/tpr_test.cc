#include "pdr/tpr/tpr_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "pdr/common/random.h"
#include "pdr/mobility/generator.h"

namespace pdr {
namespace {

TprTree::Options SmallOptions() {
  TprTree::Options options;
  options.buffer_pages = 64;
  options.horizon = 40;
  return options;
}

std::vector<std::pair<ObjectId, MotionState>> BruteRange(
    const std::map<ObjectId, MotionState>& objects, const Rect& window,
    Tick t) {
  std::vector<std::pair<ObjectId, MotionState>> out;
  for (const auto& [id, state] : objects) {
    if (window.ContainsClosed(state.PositionAt(t))) out.emplace_back(id, state);
  }
  return out;
}

void ExpectSameIds(std::vector<std::pair<ObjectId, MotionState>> got,
                   std::vector<std::pair<ObjectId, MotionState>> want) {
  auto key = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(got.begin(), got.end(), key);
  std::sort(want.begin(), want.end(), key);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first);
    EXPECT_EQ(got[i].second, want[i].second);
  }
}

TEST(TpbrTest, ObjectBoxTracksTrajectory) {
  const MotionState s{{10, 20}, {1, -1}, 5};
  const Tpbr box = Tpbr::ForObject(s);
  const Rect at9 = box.RectAt(9);
  EXPECT_TRUE(at9.AlmostEquals(Rect(14, 16, 14, 16)));
}

TEST(TpbrTest, UnionCoversBothOverTime) {
  const Tpbr a = Tpbr::ForObject({{0, 0}, {1, 0}, 0});
  const Tpbr b = Tpbr::ForObject({{10, 5}, {-1, 1}, 2});
  const Tpbr u = Tpbr::Union(a, b);
  for (double t : {2.0, 5.0, 11.0, 40.0}) {
    const Rect ru = u.RectAt(t);
    for (const Tpbr& child : {a, b}) {
      const Rect rc = child.RectAt(t);
      EXPECT_LE(ru.x_lo, rc.x_lo + 1e-9);
      EXPECT_GE(ru.x_hi, rc.x_hi - 1e-9);
      EXPECT_LE(ru.y_lo, rc.y_lo + 1e-9);
      EXPECT_GE(ru.y_hi, rc.y_hi - 1e-9);
    }
  }
  EXPECT_TRUE(u.Covers(a));
  EXPECT_TRUE(u.Covers(b));
  EXPECT_FALSE(a.Covers(b));
}

TEST(TpbrTest, IntegratedAreaGrowsWithSpread) {
  Tpbr tight;
  tight.rect = Rect(0, 0, 2, 2);
  Tpbr spread = tight;
  spread.vx_hi = 1.0;  // x-extent grows over time
  EXPECT_NEAR(tight.IntegratedArea(0, 10), 4.0 * 10, 1e-9);
  EXPECT_GT(spread.IntegratedArea(0, 10), tight.IntegratedArea(0, 10));
}

TEST(TprTreeTest, EmptyTreeQueries) {
  TprTree tree(SmallOptions());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.RangeQuery(Rect(0, 0, 100, 100), 0).empty());
  EXPECT_FALSE(tree.Delete(5));
  tree.CheckInvariants();
}

TEST(TprTreeTest, SingleObjectFoundAtPredictedPosition) {
  TprTree tree(SmallOptions());
  tree.Insert(1, {{50, 50}, {1, 0}, 0});
  // At t=10 the object is at (60, 50).
  EXPECT_EQ(tree.RangeQuery(Rect(59, 49, 61, 51), 10).size(), 1u);
  EXPECT_TRUE(tree.RangeQuery(Rect(49, 49, 51, 51), 10).empty());
}

TEST(TprTreeTest, MatchesBruteForceAfterBulkInsert) {
  TprTree tree(SmallOptions());
  std::map<ObjectId, MotionState> reference;
  for (const UpdateEvent& e : MakeUniformInserts(2000, 1000.0, 1.5, 21)) {
    tree.Insert(e.id, *e.new_state);
    reference[e.id] = *e.new_state;
  }
  EXPECT_EQ(tree.size(), 2000u);
  tree.CheckInvariants();
  EXPECT_GT(tree.height(), 1);

  Rng rng(4);
  for (Tick t : {0, 5, 17, 40}) {
    for (int q = 0; q < 10; ++q) {
      const double x = rng.Uniform(-50, 950);
      const double y = rng.Uniform(-50, 950);
      const Rect window(x, y, x + rng.Uniform(20, 200),
                        y + rng.Uniform(20, 200));
      ExpectSameIds(tree.RangeQuery(window, t),
                    BruteRange(reference, window, t));
    }
  }
}

TEST(TprTreeTest, DeleteRemovesExactlyOneObject) {
  TprTree tree(SmallOptions());
  for (const UpdateEvent& e : MakeUniformInserts(500, 500.0, 1.0, 22)) {
    tree.Insert(e.id, *e.new_state);
  }
  EXPECT_TRUE(tree.Delete(123));
  EXPECT_FALSE(tree.Delete(123));
  EXPECT_EQ(tree.size(), 499u);
  const auto all = tree.RangeQuery(Rect(-100, -100, 600, 600), 0);
  EXPECT_EQ(all.size(), 499u);
  for (const auto& [id, state] : all) {
    (void)state;
    EXPECT_NE(id, 123u);
  }
  tree.CheckInvariants();
}

TEST(TprTreeTest, DeleteAllLeavesEmptyTree) {
  TprTree tree(SmallOptions());
  const auto inserts = MakeUniformInserts(800, 500.0, 1.0, 23);
  for (const UpdateEvent& e : inserts) tree.Insert(e.id, *e.new_state);
  for (const UpdateEvent& e : inserts) EXPECT_TRUE(tree.Delete(e.id));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.RangeQuery(Rect(0, 0, 500, 500), 5).empty());
  tree.CheckInvariants();
  // Tree must be reusable after total deletion.
  tree.Insert(9999, {{10, 10}, {0, 0}, 0});
  EXPECT_EQ(tree.RangeQuery(Rect(0, 0, 20, 20), 0).size(), 1u);
}

TEST(TprTreeTest, MixedWorkloadStaysConsistent) {
  TprTree tree(SmallOptions());
  std::map<ObjectId, MotionState> reference;
  Rng rng(31);
  ObjectId next_id = 0;
  for (int round = 0; round < 6; ++round) {
    const Tick now = round * 5;
    tree.AdvanceTo(now);
    // Insert a batch.
    for (int i = 0; i < 300; ++i) {
      const MotionState s{{rng.Uniform(0, 800), rng.Uniform(0, 800)},
                          {rng.Uniform(-1, 1), rng.Uniform(-1, 1)},
                          now};
      tree.Insert(next_id, s);
      reference[next_id] = s;
      ++next_id;
    }
    // Update (delete + reinsert) a random existing subset.
    std::vector<ObjectId> ids;
    for (const auto& [id, s] : reference) {
      (void)s;
      ids.push_back(id);
    }
    for (int i = 0; i < 150; ++i) {
      const ObjectId id = ids[rng.UniformInt(0, ids.size() - 1)];
      const MotionState fresh{
          {rng.Uniform(0, 800), rng.Uniform(0, 800)},
          {rng.Uniform(-1, 1), rng.Uniform(-1, 1)},
          now};
      UpdateEvent update{now, id, reference[id], fresh};
      tree.Apply(update);
      reference[id] = fresh;
    }
    // Delete a random subset.
    for (int i = 0; i < 80; ++i) {
      const ObjectId id = ids[rng.UniformInt(0, ids.size() - 1)];
      if (reference.erase(id)) {
        EXPECT_TRUE(tree.Delete(id));
      }
    }
    tree.CheckInvariants();
    EXPECT_EQ(tree.size(), reference.size());
    for (int q = 0; q < 6; ++q) {
      const double x = rng.Uniform(0, 700);
      const double y = rng.Uniform(0, 700);
      const Rect window(x, y, x + 150, y + 150);
      const Tick t = now + static_cast<Tick>(rng.UniformInt(0, 20));
      ExpectSameIds(tree.RangeQuery(window, t),
                    BruteRange(reference, window, t));
    }
  }
}

TEST(TprTreeTest, IoStatsAccumulateAndReset) {
  TprTree tree(SmallOptions());
  for (const UpdateEvent& e : MakeUniformInserts(1500, 1000.0, 1.0, 25)) {
    tree.Insert(e.id, *e.new_state);
  }
  tree.ResetIoStats();
  tree.DropCaches();
  const auto result = tree.RangeQuery(Rect(0, 0, 1000, 1000), 0);
  EXPECT_EQ(result.size(), 1500u);
  EXPECT_GT(tree.io_stats().physical_reads, 0);
  EXPECT_GE(tree.io_stats().logical_reads, tree.io_stats().physical_reads);
  // A warm repeat of the same query does no physical I/O (pool is large
  // enough for this small tree).
  tree.ResetIoStats();
  (void)tree.RangeQuery(Rect(0, 0, 1000, 1000), 0);
  EXPECT_EQ(tree.io_stats().physical_reads, 0);
}

TEST(TprTreeTest, ColdQueryReadsFewerPagesForSmallWindows) {
  TprTree tree(SmallOptions());
  for (const UpdateEvent& e : MakeUniformInserts(4000, 1000.0, 0.5, 26)) {
    tree.Insert(e.id, *e.new_state);
  }
  tree.DropCaches();
  tree.ResetIoStats();
  (void)tree.RangeQuery(Rect(100, 100, 140, 140), 0);
  const int64_t small_reads = tree.io_stats().physical_reads;
  tree.DropCaches();
  tree.ResetIoStats();
  (void)tree.RangeQuery(Rect(0, 0, 1000, 1000), 0);
  const int64_t full_reads = tree.io_stats().physical_reads;
  EXPECT_LT(small_reads, full_reads / 2);
}

TEST(TprTreeTest, PredictiveQueriesStayCorrectAcrossHorizon) {
  // Objects moving fast enough to cross many cells over the horizon.
  TprTree tree(SmallOptions());
  std::map<ObjectId, MotionState> reference;
  Rng rng(41);
  for (ObjectId id = 0; id < 1000; ++id) {
    const MotionState s{{rng.Uniform(200, 400), rng.Uniform(200, 400)},
                        {rng.Uniform(-3, 3), rng.Uniform(-3, 3)},
                        0};
    tree.Insert(id, s);
    reference[id] = s;
  }
  for (Tick t = 0; t <= 40; t += 8) {
    const Rect window(250, 250, 500, 500);
    ExpectSameIds(tree.RangeQuery(window, t),
                  BruteRange(reference, window, t));
  }
}

TEST(TprTreeTest, QueriesFarBeyondHorizonStayCorrect) {
  // The horizon only tunes heuristics; bounds are conservative for every
  // t >= t_ref, so queries far past it must still be exact.
  TprTree tree(SmallOptions());  // horizon = 40
  std::map<ObjectId, MotionState> reference;
  Rng rng(61);
  for (ObjectId id = 0; id < 600; ++id) {
    const MotionState s{{rng.Uniform(0, 500), rng.Uniform(0, 500)},
                        {rng.Uniform(-0.5, 0.5), rng.Uniform(-0.5, 0.5)},
                        0};
    tree.Insert(id, s);
    reference[id] = s;
  }
  for (Tick t : {100, 250, 500}) {  // 2.5x .. 12.5x the horizon
    const Rect window(100, 100, 450, 450);
    ExpectSameIds(tree.RangeQuery(window, t),
                  BruteRange(reference, window, t));
  }
}

TEST(TprTreeTest, ApplyInsertDeleteEventForms) {
  TprTree tree(SmallOptions());
  const MotionState s{{5, 5}, {0, 0}, 0};
  tree.Apply(UpdateEvent{0, 7, std::nullopt, s});
  EXPECT_EQ(tree.size(), 1u);
  tree.Apply(UpdateEvent{0, 7, s, std::nullopt});
  EXPECT_EQ(tree.size(), 0u);
}

}  // namespace
}  // namespace pdr
