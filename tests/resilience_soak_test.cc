// Seeded overload soak for the resilience stack: several serving threads
// hammer deadline-bounded queries through one shared admission
// controller, and a durable engine checkpoints through a periodic
// transient-fault storm. The contract under load:
//
//   - every offered query is accounted for (answered + shed = offered),
//   - nothing hangs (the whole soak finishes inside a wall-clock budget),
//   - shedding stays bounded (the controller rejects overflow, not all),
//   - transient faults are retried invisibly — no data loss, no crash.
//
// The quick mode runs in the regular ctest sweep; PDR_SOAK=full — the CI
// soak lane — scales up iterations and rounds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "pdr/core/fr_engine.h"
#include "pdr/core/pa_engine.h"
#include "pdr/mobility/generator.h"
#include "pdr/obs/obs.h"
#include "pdr/resilience/admission.h"
#include "pdr/resilience/deadline.h"
#include "pdr/resilience/executor.h"
#include "pdr/storage/fault_injector.h"

namespace pdr {
namespace {

constexpr double kExtent = 200.0;
constexpr double kL = 25.0;
constexpr Tick kHorizon = 20;

bool FullSoak() {
  const char* env = std::getenv("PDR_SOAK");
  return env != nullptr && std::string(env) == "full";
}

FrEngine::Options FrOpts() {
  return {.extent = kExtent,
          .histogram_side = 16,
          .horizon = kHorizon,
          .buffer_pages = 64,
          .io_ms = 10.0};
}

PaEngine::Options PaOpts() {
  return {.extent = kExtent,
          .poly_side = 4,
          .degree = 5,
          .horizon = kHorizon,
          .l = kL,
          .eval_grid = 64};
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pdr_soak_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    dir_ = dir != nullptr ? dir : "/tmp";
  }
  ~TempDir() { std::system(("rm -rf '" + dir_ + "'").c_str()); }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

TEST(ResilienceSoakTest, OverloadedServingLoopShedsButNeverHangs) {
  const bool full = FullSoak();
  const int kThreads = 4;
  const int kPerThread = full ? 300 : 50;
  const int kMaxInflight = 2;
  const auto wall_budget = std::chrono::seconds(full ? 300 : 120);
  const auto start = std::chrono::steady_clock::now();

  const std::vector<UpdateEvent> events =
      MakeClusteredInserts(200, 2, kExtent, 10.0, 0.2, /*seed=*/11);
  const double rho = 1.5 * 200 / (kExtent * kExtent);

  AdmissionController admission({.max_inflight = kMaxInflight});
  std::atomic<int64_t> answered{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> tier_counts[4] = {{0}, {0}, {0}, {0}};
  std::atomic<int> max_live{0};
  std::atomic<int> live{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Engines are not shared across query threads: each serving loop
      // owns a replica fed the identical update stream.
      FrEngine fr(FrOpts());
      PaEngine pa(PaOpts());
      for (const UpdateEvent& e : events) {
        fr.Apply(e);
        pa.Apply(e);
      }
      for (int i = 0; i < kPerThread; ++i) {
        AdmissionController::Permit permit = admission.TryAdmit();
        if (!permit.ok()) {
          shed.fetch_add(1);
          std::this_thread::yield();  // back off, retry next query
          continue;
        }
        const int now_live = live.fetch_add(1) + 1;
        int prev = max_live.load();
        while (now_live > prev && !max_live.compare_exchange_weak(prev, now_live)) {
        }
        // Deterministic per-(thread, i) deadline schedule mixing generous
        // budgets (exact tier), pre-expired ones (histogram floor), and
        // tight-but-plausible ones (whatever rung the clock allows).
        const int mode = (t + i) % 3;
        const double deadline_ms = mode == 0 ? 1e9 : mode == 1 ? 1e-6 : 2.0;
        ResilientExecutor exec(&fr, &pa, {.deadline_ms = deadline_ms});
        const Tick q_t = static_cast<Tick>(i % (kHorizon + 1));
        const TieredResult result = exec.Query(q_t, rho, kL);
        tier_counts[static_cast<int>(result.tier)].fetch_add(1);
        answered.fetch_add(1);
        live.fetch_sub(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const int64_t offered = static_cast<int64_t>(kThreads) * kPerThread;
  EXPECT_EQ(answered.load() + shed.load(), offered);
  EXPECT_EQ(admission.admitted(), answered.load());
  EXPECT_EQ(admission.shed(), shed.load());
  EXPECT_EQ(admission.inflight(), 0);  // every permit was released
  EXPECT_LE(max_live.load(), kMaxInflight);
  // Overload must shed *some* but the loop keeps making progress: under
  // 4 threads against 2 slots, at most ~90% may bounce.
  EXPECT_LT(admission.ShedRate(), 0.9) << "serving loop starved";
  EXPECT_GT(answered.load(), 0);
  // Every answered query landed on a real rung.
  EXPECT_EQ(tier_counts[0].load() + tier_counts[1].load() +
                tier_counts[2].load(),
            answered.load());
  EXPECT_EQ(tier_counts[3].load(), 0);  // kShed is stamped by callers only
  // Generous budgets answer exact; pre-expired ones hit the floor.
  EXPECT_GT(tier_counts[0].load(), 0);
  EXPECT_GT(tier_counts[2].load(), 0);
  EXPECT_LT(std::chrono::steady_clock::now() - start, wall_budget)
      << "soak exceeded its wall-clock budget";
}

TEST(ResilienceSoakTest, TransientFaultStormDoesNotLoseDataOrHang) {
  const bool full = FullSoak();
  const int kRounds = full ? 12 : 4;
  const bool was_enabled = PdrObs::Enabled();
  PdrObs::SetEnabled(true);
  Counter& retries =
      MetricsRegistry::Global().GetCounter("pdr.storage.transient_retries");
  const int64_t retries_before = retries.value();

  const std::vector<UpdateEvent> events =
      MakeClusteredInserts(40 * kRounds, 2, kExtent, 10.0, 0.2, /*seed=*/23);
  const double rho = 1.5 * 200 / (kExtent * kExtent);

  TempDir dir;
  FaultInjector injector;
  // Two consecutive failures out of every seven fault points, for the
  // whole run: every checkpoint round ploughs through several faults.
  injector.ArmTransientEvery(/*period=*/7, /*failures=*/2);
  FrEngine::Options opts = FrOpts();
  opts.storage_dir = dir.path();
  opts.fault_injector = &injector;

  Region final_answer;
  {
    FrEngine fr(opts);
    ResilientExecutor exec(&fr, nullptr, {.deadline_ms = 1e9});
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < 40; ++i) {
        fr.Apply(events[static_cast<size_t>(round * 40 + i)]);
      }
      ASSERT_NO_THROW(fr.Checkpoint()) << "round " << round;
      // Deadline-bounded queries interleave with the faulting
      // checkpoints; queries never touch storage fault points.
      const TieredResult result = exec.Query(0, rho, kL);
      EXPECT_EQ(result.tier, AnswerTier::kExact);
      final_answer = result.region;
    }
    EXPECT_GT(injector.transient_fired(), 0);
    EXPECT_FALSE(injector.fired()) << "transient fault escalated to a crash";
    EXPECT_EQ(retries.value() - retries_before, injector.transient_fired());
  }

  // Reopen fault-free: a normal checkpointed store with nothing lost.
  injector.DisarmTransient();
  FrEngine recovered(opts);
  EXPECT_TRUE(recovered.recovered());
  const Region after = recovered.Query(0, rho, kL).region;
  ASSERT_EQ(after.size(), final_answer.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after.rects()[i].x_lo, final_answer.rects()[i].x_lo);
    EXPECT_EQ(after.rects()[i].x_hi, final_answer.rects()[i].x_hi);
    EXPECT_EQ(after.rects()[i].y_lo, final_answer.rects()[i].y_lo);
    EXPECT_EQ(after.rects()[i].y_hi, final_answer.rects()[i].y_hi);
  }
  PdrObs::SetEnabled(was_enabled);
}

}  // namespace
}  // namespace pdr
