// Silent-corruption defense battery (DESIGN.md §16).
//
// The invariant under test: a single damaged copy of any page — a flipped
// bit in the in-memory mirror (RAM rot), in the on-disk slot (media rot),
// or injected into a write in flight (firmware bug) — is DETECTED on the
// next verified read, HEALED from the surviving redundant copy, and the
// healed store answers the seeded FR query suite bit-identically
// (hexfloat transcripts) to an undamaged run. Damage past all redundancy
// is never served: the page is quarantined and reads throw a typed
// CorruptionError, which the resilience ladder converts into a tier
// downgrade (DowngradeReason::kCorruption) instead of a wrong answer.
//
// The sweep test at the bottom walks every live page of a real engine
// store across flip-position classes, hot (mirror) and cold (slot). By
// default each page gets one hot and one cold flip; PDR_CORRUPT_SWEEP=full
// — the CI corruption lane — runs the full position matrix.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "pdr/core/fr_engine.h"
#include "pdr/core/monitor.h"
#include "pdr/core/pa_engine.h"
#include "pdr/mobility/generator.h"
#include "pdr/mvcc/snapshot_manager.h"
#include "pdr/mvcc/versioned_pager.h"
#include "pdr/obs/flight_recorder.h"
#include "pdr/resilience/deadline.h"
#include "pdr/resilience/executor.h"
#include "pdr/storage/disk_pager.h"
#include "pdr/storage/fault_injector.h"
#include "pdr/storage/fsck.h"
#include "pdr/storage/page_format.h"
#include "pdr/storage/storage_file.h"
#include "transcript_util.h"

namespace pdr {
namespace {

using test_util::FrSuiteTranscript;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/pdr_corruption_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    dir_ = dir != nullptr ? dir : "/tmp";
  }
  ~TempDir() { std::system(("rm -rf '" + dir_ + "'").c_str()); }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

Page PatternPage(uint64_t seed) {
  Page p;
  for (size_t i = 0; i < kPageSize; ++i) {
    p.bytes[i] = static_cast<std::byte>((seed * 2654435761u + i * 97u) & 0xFF);
  }
  return p;
}

// A small durable store: `n` pages with deterministic content, converged
// by one checkpoint so every slot is stamped and every page is clean.
std::vector<PageId> BuildStore(DiskPager* pager, int n, uint64_t seed = 1) {
  std::vector<PageId> ids;
  for (int i = 0; i < n; ++i) {
    const PageId id = pager->Allocate();
    pager->WritePage(id, PatternPage(seed + i));
    ids.push_back(id);
  }
  pager->Checkpoint("meta");
  return ids;
}

std::string DataPath(const std::string& dir) { return dir + "/data.pdr"; }

// ---------------------------------------------------------------------------
// Detection + self-healing at the pager level
// ---------------------------------------------------------------------------

TEST(CorruptionTest, MirrorBitFlipHealsFromSlot) {
  TempDir dir;
  DiskPager pager(dir.path());
  const auto ids = BuildStore(&pager, 3);

  Page want;
  pager.ReadPage(ids[1], &want);
  EXPECT_EQ(pager.repair_stats().mirror_repairs, 0);

  pager.CorruptMirrorPageForTest(ids[1], /*bit_index=*/777);
  Page got;
  pager.ReadPage(ids[1], &got);  // verified read heals from the slot
  EXPECT_EQ(got.bytes, want.bytes);
  EXPECT_EQ(pager.repair_stats().mirror_repairs, 1);
  EXPECT_TRUE(pager.quarantined().empty());

  // Healed for good: the next read verifies without another repair.
  pager.ReadPage(ids[1], &got);
  EXPECT_EQ(got.bytes, want.bytes);
  EXPECT_EQ(pager.repair_stats().mirror_repairs, 1);
}

TEST(CorruptionTest, ColdSlotRotHealedByScrubBeforeAnyReadTripsOnIt) {
  TempDir dir;
  Page want;
  {
    DiskPager pager(dir.path());
    const auto ids = BuildStore(&pager, 4);
    pager.ReadPage(ids[2], &want);

    // At-rest damage in the slot's page bytes. The mirror still verifies,
    // so reads stay fine — only the scrubber (or a crash-restart) would
    // ever touch the rotten slot.
    ASSERT_TRUE(
        FlipBitInFile(DataPath(dir.path()), SlotOffset(ids[2]) + 100, 2));
    Page got;
    pager.ReadPage(ids[2], &got);
    EXPECT_EQ(got.bytes, want.bytes);
    EXPECT_EQ(pager.repair_stats().slot_repairs, 0);

    const ScrubStats round = pager.Scrub(/*budget_pages=*/16);
    EXPECT_EQ(round.pages_repaired, 1);
    EXPECT_EQ(round.pages_unrepairable, 0);
    EXPECT_EQ(pager.repair_stats().slot_repairs, 1);
  }
  // The repair reached the disk: a fresh process opens the store (a store
  // with an invalid slot and no WAL coverage would refuse) and serves the
  // original bytes.
  DiskPager reopened(dir.path());
  EXPECT_TRUE(reopened.recovered());
  Page got;
  reopened.ReadPage(2, &got);
  EXPECT_EQ(got.bytes, want.bytes);
}

TEST(CorruptionTest, TrailerDamageIsDetectedSameAsPayloadDamage) {
  TempDir dir;
  DiskPager pager(dir.path());
  const auto ids = BuildStore(&pager, 3);

  // Flip a bit inside the stored checksum itself — the slot is damaged
  // even though the page bytes are pristine.
  ASSERT_TRUE(FlipBitInFile(DataPath(dir.path()),
                            SlotOffset(ids[0]) + kPageSize + 16, 0));
  const ScrubStats round = pager.Scrub(16);
  EXPECT_EQ(round.pages_repaired, 1);
  EXPECT_EQ(pager.repair_stats().slot_repairs, 1);
  EXPECT_EQ(pager.RepairPage(ids[0]), PageHealth::kHealthy);
}

TEST(CorruptionTest, BothCopiesDamagedQuarantinesUntilRewritten) {
  TempDir dir;
  DiskPager pager(dir.path());
  const auto ids = BuildStore(&pager, 3);
  const PageId victim = ids[1];

  pager.CorruptMirrorPageForTest(victim, 123);
  ASSERT_TRUE(FlipBitInFile(DataPath(dir.path()), SlotOffset(victim) + 50, 4));

  Page out;
  try {
    pager.ReadPage(victim, &out);
    FAIL() << "read of a doubly-damaged page must throw";
  } catch (const CorruptionError& e) {
    EXPECT_EQ(e.page_id(), victim);
    EXPECT_NE(std::string(e.what()).find(dir.path()), std::string::npos);
    EXPECT_NE(e.expected(), e.actual());
  }
  EXPECT_EQ(pager.repair_stats().unrepairable, 1);
  EXPECT_EQ(pager.quarantined().count(victim), 1u);

  // Quarantine is sticky: every further read throws, no wrong answer is
  // ever served.
  EXPECT_THROW(pager.ReadPage(victim, &out), CorruptionError);

  // New content supersedes the lost version and lifts the quarantine.
  const Page fresh = PatternPage(99);
  pager.WritePage(victim, fresh);
  EXPECT_TRUE(pager.quarantined().empty());
  pager.ReadPage(victim, &out);
  EXPECT_EQ(out.bytes, fresh.bytes);

  // The checkpoint restamps the rewritten slot; a fresh process agrees.
  pager.Checkpoint("meta2");
  DiskPager reopened(dir.path());
  reopened.ReadPage(victim, &out);
  EXPECT_EQ(out.bytes, fresh.bytes);
}

TEST(CorruptionTest, AtRestDamageWithNoRedundancyRefusesToOpen) {
  TempDir dir;
  {
    DiskPager pager(dir.path());
    BuildStore(&pager, 3);
  }  // clean shutdown: WAL reset, the slots are the only copy
  ASSERT_TRUE(FlipBitInFile(DataPath(dir.path()), SlotOffset(1) + 10, 1));
  try {
    DiskPager pager(dir.path());
    FAIL() << "recovery over an unrepairable slot must refuse to open";
  } catch (const CorruptionError& e) {
    EXPECT_EQ(e.page_id(), 1u);
  }
  // fsck agrees — and reports rather than throws.
  const FsckReport report = RunFsck(dir.path());
  EXPECT_EQ(report.exit_code(), 3);
  EXPECT_EQ(report.pages_unrepairable, 1);
  ASSERT_EQ(report.damaged.size(), 1u);
  EXPECT_EQ(report.damaged[0].id, 1u);
  EXPECT_FALSE(report.damaged[0].redo_covered);
}

TEST(CorruptionTest, CrashTornSlotPlusColdRotHealedByWalRedo) {
  // A crash mid-converge leaves torn slots whose after-images are durable
  // in the WAL; extra at-rest damage on another committed slot is healed
  // by the same redo. recovery_stats().pages_repaired counts both.
  TempDir rehearsal_dir;
  FaultInjector counter;
  int64_t first_data_write = -1;
  {
    DiskPager pager(rehearsal_dir.path(), &counter);
    BuildStore(&pager, 4);
    const size_t ops_before = counter.op_log().size();
    for (int i = 0; i < 4; ++i) pager.WritePage(i, PatternPage(50 + i));
    pager.Checkpoint("v2");
    for (size_t i = ops_before; i < counter.op_log().size(); ++i) {
      if (counter.op_log()[i] == "data.write") {
        first_data_write = static_cast<int64_t>(i);
        break;
      }
    }
  }
  ASSERT_GE(first_data_write, 0);

  TempDir dir;
  FaultInjector injector(/*seed=*/7);
  injector.Arm(first_data_write, CrashMode::kTornWrite);
  {
    DiskPager pager(dir.path(), &injector);
    BuildStore(&pager, 4);
    for (int i = 0; i < 4; ++i) pager.WritePage(i, PatternPage(50 + i));
    EXPECT_THROW(pager.Checkpoint("v2"), CrashError);
    EXPECT_TRUE(pager.poisoned());
  }
  // Cold rot on a *different* slot than the torn one (page 3's write never
  // happened — ops are ordered — so damage page 3's old slot too).
  ASSERT_TRUE(FlipBitInFile(DataPath(dir.path()), SlotOffset(3) + 20, 6));

  DiskPager recovered(dir.path());
  EXPECT_TRUE(recovered.recovered());
  EXPECT_GE(recovered.recovery_stats().pages_repaired, 2);
  EXPECT_EQ(recovered.recovered_meta(), "v2");
  for (int i = 0; i < 4; ++i) {
    Page got;
    recovered.ReadPage(i, &got);
    EXPECT_EQ(got.bytes, PatternPage(50 + i).bytes) << "page " << i;
  }
}

TEST(CorruptionTest, ScrubBudgetWrapsCursorAndHonorsCancel) {
  TempDir dir;
  DiskPager pager(dir.path());
  BuildStore(&pager, 6);

  ScrubStats round = pager.Scrub(4);
  EXPECT_EQ(round.pages_scanned, 4);
  round = pager.Scrub(4);  // wraps past page 5 back to 0–1
  EXPECT_EQ(round.pages_scanned, 4);
  EXPECT_EQ(pager.scrub_stats().pages_scanned, 8);
  EXPECT_EQ(pager.scrub_stats().pages_repaired, 0);

  CancelToken token;
  token.Cancel();
  round = pager.Scrub(100, &token);
  EXPECT_EQ(round.pages_scanned, 0);
  EXPECT_EQ(pager.scrub_stats().pages_scanned, 8);
}

TEST(CorruptionTest, QuarantineFiresFlightRecorderDump) {
  TempDir store_dir;
  TempDir dump_dir;
  FlightRecorder::Options options;
  options.dump_dir = dump_dir.path();
  options.triggers = FlightRecorder::kOnCorruption;
  FlightRecorder::SetEnabled(true);
  FlightRecorder::Global().Reset();
  FlightRecorder::Global().Configure(options);

  DiskPager pager(store_dir.path());
  const auto ids = BuildStore(&pager, 2);
  pager.CorruptMirrorPageForTest(ids[0], 9);
  ASSERT_TRUE(
      FlipBitInFile(DataPath(store_dir.path()), SlotOffset(ids[0]) + 30, 2));
  Page out;
  EXPECT_THROW(pager.ReadPage(ids[0], &out), CorruptionError);

  const std::string dump = dump_dir.path() + "/fr_000_corruption.jsonl";
  EXPECT_EQ(::access(dump.c_str(), F_OK), 0) << dump;
  FlightRecorder::Global().Reset();
  FlightRecorder::Global().Configure(FlightRecorder::Options{});
  FlightRecorder::SetEnabled(false);
}

// ---------------------------------------------------------------------------
// Injected in-flight corruption (FaultInjector)
// ---------------------------------------------------------------------------

// Runs a fixed store build with silent corruption armed at `point`;
// returns the injector for post-mortem checks.
FaultInjector RunCorruptBuild(const std::string& dir, int64_t point,
                              CorruptMode mode, uint64_t seed,
                              bool scrub_after) {
  FaultInjector injector(seed);
  injector.ArmCorrupt(point, mode);
  DiskPager pager(dir, &injector);
  BuildStore(&pager, 4);
  if (scrub_after) {
    const ScrubStats round = pager.Scrub(16);
    EXPECT_EQ(round.pages_repaired, 1);
    EXPECT_EQ(round.pages_unrepairable, 0);
  }
  return injector;
}

// The first slot write of the checkpoint's converge — i.e. the first
// "data.write" after the commit batch's "wal.sync". (The very first
// data.write of a run is the store-creation header write, which the
// trailer machinery deliberately does not cover; fsck checks it instead.)
int64_t FirstSlotWritePoint() {
  TempDir dir;
  FaultInjector counter;
  DiskPager pager(dir.path(), &counter);
  BuildStore(&pager, 4);
  bool synced = false;
  for (size_t i = 0; i < counter.op_log().size(); ++i) {
    if (counter.op_log()[i] == "wal.sync") synced = true;
    if (synced && counter.op_log()[i] == "data.write") {
      return static_cast<int64_t>(i);
    }
  }
  return -1;
}

TEST(CorruptionTest, CorruptWriteIsSilentDeterministicAndCaughtOnReopen) {
  const int64_t point = FirstSlotWritePoint();
  ASSERT_GE(point, 0);

  // Two identical runs, same seed and armed point: the damage placement
  // must reproduce bit-for-bit (a sweep's failures are replayable).
  TempDir a;
  TempDir b;
  const FaultInjector ia =
      RunCorruptBuild(a.path(), point, CorruptMode::kBitFlip, 11, false);
  const FaultInjector ib =
      RunCorruptBuild(b.path(), point, CorruptMode::kBitFlip, 11, false);
  EXPECT_TRUE(ia.corrupt_fired());
  EXPECT_TRUE(ib.corrupt_fired());
  std::string bytes_a;
  std::string bytes_b;
  ASSERT_TRUE(ReadFileIfExists(DataPath(a.path()), &bytes_a));
  ASSERT_TRUE(ReadFileIfExists(DataPath(b.path()), &bytes_b));
  EXPECT_EQ(bytes_a, bytes_b);

  // The write reported success — but the checkpoint completed and reset
  // the WAL, so the damaged slot has no redo coverage left. The next
  // process refuses to serve from it.
  EXPECT_THROW(DiskPager reopened(a.path()), CorruptionError);
}

TEST(CorruptionTest, ScrubHealsCorruptWriteBeforeItBecomesUnrepairable) {
  const int64_t point = FirstSlotWritePoint();
  ASSERT_GE(point, 0);
  TempDir dir;
  const FaultInjector injector =
      RunCorruptBuild(dir.path(), point, CorruptMode::kBitFlip, 11, true);
  EXPECT_TRUE(injector.corrupt_fired());
  // Scrubbed while the mirror still held the good copy: clean reopen.
  DiskPager reopened(dir.path());
  EXPECT_TRUE(reopened.recovered());
}

TEST(CorruptionTest, SilentCorruptionRunModeIsCaughtToo) {
  const int64_t point = FirstSlotWritePoint();
  ASSERT_GE(point, 0);
  TempDir dir;
  const FaultInjector injector = RunCorruptBuild(
      dir.path(), point, CorruptMode::kSilentCorruption, 23, true);
  EXPECT_TRUE(injector.corrupt_fired());
  DiskPager reopened(dir.path());
  EXPECT_TRUE(reopened.recovered());
}

TEST(CorruptionTest, FlipBitInFileReportsUnusableTargets) {
  EXPECT_FALSE(FlipBitInFile("/tmp/pdr_no_such_file_xyz", 0, 0));
  TempDir dir;
  {
    DiskPager pager(dir.path());
    BuildStore(&pager, 1);
  }
  EXPECT_FALSE(FlipBitInFile(DataPath(dir.path()), 1u << 30, 0));
}

// ---------------------------------------------------------------------------
// Graceful degradation: the ladder, the monitor, and snapshot reads
// ---------------------------------------------------------------------------

constexpr double kLadderExtent = 200.0;
constexpr double kLadderL = 25.0;

TEST(CorruptionTest, ExecutorDowngradesInsteadOfServingCorruptPages) {
  TempDir dir;
  FrEngine fr({.extent = kLadderExtent,
               .histogram_side = 16,
               .horizon = 20,
               .buffer_pages = 64,
               .io_ms = 10.0,
               .storage_dir = dir.path()});
  PaEngine pa({.extent = kLadderExtent,
               .poly_side = 4,
               .degree = 5,
               .horizon = 20,
               .l = kLadderL,
               .eval_grid = 64});
  const auto events = MakeClusteredInserts(200, 2, kLadderExtent, 10.0, 0.2, 7);
  for (const UpdateEvent& e : events) {
    fr.Apply(e);
    pa.Apply(e);
  }
  fr.Checkpoint();  // every page clean + stamped

  // Destroy both copies of every stamped page, then quarantine them all.
  DiskPager* disk = fr.index().disk();
  ASSERT_NE(disk, nullptr);
  int quarantined = 0;
  for (PageId id = 0; id < disk->allocated_pages(); ++id) {
    Page probe;
    try {
      disk->ReadPage(id, &probe);
    } catch (const std::invalid_argument&) {
      continue;  // free page
    }
    disk->CorruptMirrorPageForTest(id, 5);
    ASSERT_TRUE(FlipBitInFile(DataPath(dir.path()), SlotOffset(id) + 40, 3));
    if (disk->RepairPage(id) == PageHealth::kUnrepairable) ++quarantined;
  }
  ASSERT_GT(quarantined, 0);
  // The index's buffer pool may still hold clean frames; drop them so the
  // exact rung actually touches the pager.
  fr.index().DropCaches();

  const double rho = 1.5 * 200 / (kLadderExtent * kLadderExtent);

  ResilientExecutor strict(&fr, &pa, {.degrade = false});
  EXPECT_THROW(strict.Query(fr.now(), rho, kLadderL), CorruptionError);

  ResilientExecutor ladder(&fr, &pa, {.degrade = true});
  const TieredResult result = ladder.Query(fr.now(), rho, kLadderL);
  EXPECT_EQ(result.tier, AnswerTier::kApprox);
  EXPECT_EQ(result.downgrade_reason, DowngradeReason::kCorruption);
  bool exact_incomplete = false;
  for (const ExplainStage& stage : result.explain.stages) {
    if (stage.name == "exact" && !stage.completed) exact_incomplete = true;
  }
  EXPECT_TRUE(exact_incomplete);
}

TEST(CorruptionTest, MonitorScrubHookVerifiesTheStoreWhileServing) {
  TempDir dir;
  FrEngine fr({.extent = kLadderExtent,
               .histogram_side = 16,
               .horizon = 20,
               .buffer_pages = 64,
               .io_ms = 10.0,
               .storage_dir = dir.path()});
  for (const UpdateEvent& e :
       MakeClusteredInserts(150, 2, kLadderExtent, 10.0, 0.2, 7)) {
    fr.Apply(e);
  }
  DiskPager* disk = fr.index().disk();
  ASSERT_NE(disk, nullptr);

  PdrMonitor monitor(&fr, {.rho = 1.0 * 150 / (kLadderExtent * kLadderExtent),
                           .l = kLadderL});
  int scrub_calls = 0;
  monitor.SetCheckpointHook([&fr] { fr.Checkpoint(); }, /*every_ticks=*/1);
  monitor.SetScrubHook([&] {
    ++scrub_calls;
    disk->Scrub(/*budget_pages=*/8);
  });
  for (Tick now = 1; now <= 5; ++now) (void)monitor.OnTick(now);
  EXPECT_EQ(scrub_calls, 5);
  EXPECT_GT(disk->scrub_stats().pages_scanned, 0);
  EXPECT_EQ(disk->scrub_stats().pages_unrepairable, 0);
}

TEST(CorruptionTest, SnapshotReadDetectsDamagedParkedVersion) {
  mvcc::SnapshotManager manager;
  mvcc::VersionedPager pager(&manager);
  const PageId id = pager.Allocate();
  pager.WritePage(id, PatternPage(5));
  pager.PublishDirty();
  manager.Commit({});
  mvcc::Snapshot snap = manager.Pin();

  mvcc::SnapshotPager reader(&pager, snap.epoch());
  Page out;
  reader.ReadPage(id, &out);
  EXPECT_EQ(out.bytes, PatternPage(5).bytes);

  // Rot the parked version in place — long-lived snapshots keep versions
  // in RAM for arbitrarily long.
  auto version = pager.ResolvePage(id, snap.epoch());
  ASSERT_NE(version, nullptr);
  auto* mutable_version = const_cast<mvcc::VersionedPage*>(version.get());
  mutable_version->page.bytes[17] ^= std::byte{0x40};

  try {
    reader.ReadPage(id, &out);
    FAIL() << "damaged version must not be served";
  } catch (const CorruptionError& e) {
    EXPECT_EQ(e.page_id(), id);
    EXPECT_NE(std::string(e.what()).find("mvcc"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// The sweep: every live page x flip-position class, hot and cold
// ---------------------------------------------------------------------------

constexpr double kSweepExtent = 400.0;
constexpr int kSweepObjects = 150;
constexpr Tick kSweepU = 8;
constexpr Tick kSweepDuration = 12;
constexpr double kSweepL = 30.0;

double SweepRho() {
  return static_cast<double>(kSweepObjects) / (kSweepExtent * kSweepExtent);
}

class CorruptionSweepTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(CorruptionSweepTest, EveryLivePageEveryFlipClassHealsBitIdentically) {
  const bool full = [] {
    const char* env = std::getenv("PDR_CORRUPT_SWEEP");
    return env != nullptr && std::string(env) == "full";
  }();

  WorkloadConfig config;
  config.WithExtent(kSweepExtent);
  config.num_objects = kSweepObjects;
  config.max_update_interval = kSweepU;
  config.seed = 99;
  const Dataset ds = GenerateDataset(config, kSweepDuration);

  TempDir dir;
  FrEngine fr({.extent = kSweepExtent,
               .histogram_side = 20,
               .horizon = 2 * kSweepU,
               .buffer_pages = 32,
               .io_ms = 10.0,
               .index = GetParam(),
               .max_update_interval = kSweepU,
               .storage_dir = dir.path()});
  for (Tick now = 0; now <= ds.duration(); ++now) {
    fr.AdvanceTo(now);
    for (const UpdateEvent& e : ds.ticks[now]) fr.Apply(e);
    if (now == kSweepDuration / 2) fr.Checkpoint();
  }
  fr.Checkpoint();

  DiskPager* disk = fr.index().disk();
  ASSERT_NE(disk, nullptr);
  const std::string baseline = FrSuiteTranscript(&fr, SweepRho(), kSweepL);

  // Baseline page images; freed ids drop out here.
  std::map<PageId, Page> pages;
  for (PageId id = 0; id < disk->allocated_pages(); ++id) {
    Page p;
    try {
      disk->ReadPage(id, &p);
    } catch (const std::invalid_argument&) {
      continue;
    }
    pages[id] = p;
  }
  ASSERT_GE(pages.size(), 3u);

  // Hot sweep: mirror rot at several bit positions; a verified read must
  // detect it and heal from the slot, returning the exact prior bytes.
  const std::vector<int> hot_bits =
      full ? std::vector<int>{0, static_cast<int>(kPageSize) * 4,
                              static_cast<int>(kPageSize) * 8 - 1}
           : std::vector<int>{static_cast<int>(kPageSize) * 4};
  int64_t expected_mirror_repairs = disk->repair_stats().mirror_repairs;
  for (const auto& [id, want] : pages) {
    for (const int bit : hot_bits) {
      disk->CorruptMirrorPageForTest(id, bit);
      Page got;
      disk->ReadPage(id, &got);
      ++expected_mirror_repairs;
      ASSERT_EQ(got.bytes, want.bytes) << "page " << id << " bit " << bit;
      ASSERT_EQ(disk->repair_stats().mirror_repairs, expected_mirror_repairs);
    }
  }

  // Cold sweep: slot rot across the payload, the trailer's structural
  // fields, and the stored checksum; RepairPage must rewrite the slot
  // from the (clean) mirror every time.
  const std::vector<uint64_t> cold_offsets =
      full ? std::vector<uint64_t>{0, kPageSize / 2, kPageSize - 1,
                                   kPageSize + 4,  // trailer version field
                                   kSlotSize - 1}  // stored checksum
           : std::vector<uint64_t>{kPageSize / 2};
  int64_t expected_slot_repairs = disk->repair_stats().slot_repairs;
  for (const auto& [id, want] : pages) {
    for (const uint64_t off : cold_offsets) {
      ASSERT_TRUE(
          FlipBitInFile(DataPath(dir.path()), SlotOffset(id) + off, 1));
      ASSERT_EQ(disk->RepairPage(id), PageHealth::kSlotRepaired)
          << "page " << id << " offset " << off;
      ++expected_slot_repairs;
      ASSERT_EQ(disk->repair_stats().slot_repairs, expected_slot_repairs);
    }
  }

  // Nothing was unrepairable, nothing is quarantined, and the engine's
  // answers are bit-identical to the undamaged baseline.
  EXPECT_EQ(disk->repair_stats().unrepairable, 0);
  EXPECT_TRUE(disk->quarantined().empty());
  EXPECT_EQ(FrSuiteTranscript(&fr, SweepRho(), kSweepL), baseline);

  // And so are a fresh process's: every slot repair reached the disk.
  FrEngine reopened({.extent = kSweepExtent,
                     .histogram_side = 20,
                     .horizon = 2 * kSweepU,
                     .buffer_pages = 32,
                     .io_ms = 10.0,
                     .index = GetParam(),
                     .max_update_interval = kSweepU,
                     .storage_dir = dir.path()});
  EXPECT_EQ(FrSuiteTranscript(&reopened, SweepRho(), kSweepL), baseline);
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, CorruptionSweepTest,
                         ::testing::Values(IndexKind::kTprTree,
                                           IndexKind::kBxTree),
                         [](const auto& info) {
                           return info.param == IndexKind::kTprTree ? "Tpr"
                                                                    : "Bx";
                         });

}  // namespace
}  // namespace pdr
