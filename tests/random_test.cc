#include "pdr/common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pdr {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.5, 12.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 12.25);
  }
}

TEST(RngTest, UniformIntInclusiveBoundsAndCoverage) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // every value hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformMeanRoughlyCentered) {
  Rng rng(123);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(55);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(56);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(77);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(0.5);
    EXPECT_GE(v, 0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(88);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(99);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(42);
  Rng fork1 = a.Fork();
  Rng b(42);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fork1.Next(), fork2.Next());
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

TEST(ZipfTest, Rank0MostPopular) {
  Rng rng(7);
  ZipfSampler zipf(10, 1.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[0], counts[9] * 5);
}

TEST(ZipfTest, AllRanksReachable) {
  Rng rng(8);
  ZipfSampler zipf(5, 0.5);
  std::set<int> seen;
  for (int i = 0; i < 20000; ++i) seen.insert(zipf.Sample(rng));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(ZipfTest, SingleElement) {
  Rng rng(9);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  Rng rng(10);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(n), 0.25, 0.01);
  }
}

}  // namespace
}  // namespace pdr
