#include "pdr/histogram/density_histogram.h"

#include <gtest/gtest.h>

#include <map>

#include "pdr/common/random.h"
#include "pdr/mobility/generator.h"

namespace pdr {
namespace {

DensityHistogram::Options SmallOptions() {
  return {.extent = 100.0, .cells_per_side = 10, .horizon = 8};
}

// Brute-force expected slice from a set of live motion states.
std::vector<uint32_t> ExpectedSlice(
    const std::map<ObjectId, MotionState>& objects, const Grid& grid,
    Tick t) {
  std::vector<uint32_t> counts(grid.cell_count(), 0);
  for (const auto& [id, state] : objects) {
    (void)id;
    const Vec2 p = state.PositionAt(t);
    if (grid.InDomain(p)) ++counts[grid.CellOf(p)];
  }
  return counts;
}

TEST(DensityHistogramTest, InsertCountsWholeHorizon) {
  DensityHistogram dh(SmallOptions());
  // Object moving right two miles per tick.
  const MotionState s{{5, 5}, {2, 0}, 0};
  dh.Apply({0, 1, std::nullopt, s});
  EXPECT_EQ(dh.CountAt(0, 0, 0), 1u);
  EXPECT_EQ(dh.CountAt(2, 0, 0), 1u);  // at (9,5), still cell 0
  EXPECT_EQ(dh.CountAt(3, 1, 0), 1u);  // at (11,5), cell 1
  EXPECT_EQ(dh.CountAt(8, 2, 0), 1u);  // at (21,5), cell 2
  EXPECT_EQ(dh.TotalAt(0), 1);
  EXPECT_EQ(dh.TotalAt(8), 1);
}

TEST(DensityHistogramTest, ObjectLeavingDomainNotCounted) {
  DensityHistogram dh(SmallOptions());
  // Leaves through the right edge after t = 3.
  const MotionState s{{95, 50}, {1.5, 0}, 0};
  dh.Apply({0, 1, std::nullopt, s});
  EXPECT_EQ(dh.TotalAt(0), 1);
  EXPECT_EQ(dh.TotalAt(3), 1);  // at x=99.5
  EXPECT_EQ(dh.TotalAt(4), 0);  // at x=101: outside, dropped
  EXPECT_EQ(dh.TotalAt(8), 0);
}

TEST(DensityHistogramTest, DeleteUndoesInsert) {
  DensityHistogram dh(SmallOptions());
  const MotionState s{{33, 66}, {0.5, -1}, 0};
  dh.Apply({0, 1, std::nullopt, s});
  dh.Apply({0, 1, s, std::nullopt});
  for (Tick t = 0; t <= 8; ++t) EXPECT_EQ(dh.TotalAt(t), 0) << t;
}

TEST(DensityHistogramTest, ModifyMovesTrajectory) {
  DensityHistogram dh(SmallOptions());
  const MotionState s0{{10, 10}, {0, 0}, 0};
  dh.Apply({0, 1, std::nullopt, s0});
  dh.AdvanceTo(2);
  const MotionState s1{{50, 50}, {0, 0}, 2};
  dh.Apply({2, 1, s0, s1});
  for (Tick t = 2; t <= 10; ++t) {
    EXPECT_EQ(dh.CountAt(t, 5, 5), 1u);
    EXPECT_EQ(dh.CountAt(t, 1, 1), 0u);
  }
}

TEST(DensityHistogramTest, MatchesBruteForceAtCurrentTick) {
  DensityHistogram dh(SmallOptions());
  std::map<ObjectId, MotionState> live;
  Rng rng(17);
  ObjectId next = 0;
  for (Tick now = 0; now <= 20; ++now) {
    dh.AdvanceTo(now);
    for (int i = 0; i < 30; ++i) {
      const int action = static_cast<int>(rng.UniformInt(0, 2));
      if (action == 0 || live.empty()) {
        const MotionState s{{rng.Uniform(0, 100), rng.Uniform(0, 100)},
                            {rng.Uniform(-2, 2), rng.Uniform(-2, 2)},
                            now};
        dh.Apply({now, next, std::nullopt, s});
        live[next] = s;
        ++next;
      } else {
        auto it = live.begin();
        std::advance(it, rng.UniformInt(0, live.size() - 1));
        if (action == 1) {
          const MotionState fresh{{rng.Uniform(0, 100), rng.Uniform(0, 100)},
                                  {rng.Uniform(-2, 2), rng.Uniform(-2, 2)},
                                  now};
          dh.Apply({now, it->first, it->second, fresh});
          it->second = fresh;
        } else {
          dh.Apply({now, it->first, it->second, std::nullopt});
          live.erase(it);
        }
      }
    }
    // The slice for "now" is always complete regardless of update recency.
    EXPECT_EQ(dh.Slice(now), ExpectedSlice(live, dh.grid(), now))
        << "now " << now;
  }
}

TEST(DensityHistogramTest, SliceCompleteWithinUpdateContract) {
  // When every object re-reports within U and W = H - U, slices up to
  // now + W are exact. Drive with the trip simulator which enforces U.
  WorkloadConfig config;
  config.WithExtent(100.0);
  config.num_objects = 200;
  config.max_update_interval = 5;
  config.network.grid_nodes = 6;
  config.seed = 23;
  TripSimulator sim(config);

  DensityHistogram dh({.extent = 100.0, .cells_per_side = 10, .horizon = 10});
  std::map<ObjectId, MotionState> live;
  for (const UpdateEvent& e : sim.Bootstrap()) {
    dh.Apply(e);
    live[e.id] = *e.new_state;
  }
  for (Tick now = 1; now <= 25; ++now) {
    dh.AdvanceTo(now);
    for (const UpdateEvent& e : sim.Advance(now)) {
      dh.Apply(e);
      live[e.id] = *e.new_state;
    }
    for (Tick t = now; t <= now + 5; ++t) {  // W = H - U = 5 ahead
      EXPECT_EQ(dh.Slice(t), ExpectedSlice(live, dh.grid(), t))
          << "now " << now << " tick " << t;
    }
  }
}

TEST(DensityHistogramTest, AdvanceRecyclesSlices) {
  DensityHistogram dh(SmallOptions());
  const MotionState s{{50, 50}, {0, 0}, 0};
  dh.Apply({0, 1, std::nullopt, s});
  EXPECT_EQ(dh.TotalAt(8), 1);
  dh.AdvanceTo(3);
  // Ticks 9..11 are fresh slices; the stale object never wrote them.
  EXPECT_EQ(dh.TotalAt(9), 0);
  EXPECT_EQ(dh.TotalAt(11), 0);
  // Ticks 3..8 still carry the object.
  EXPECT_EQ(dh.TotalAt(3), 1);
  EXPECT_EQ(dh.TotalAt(8), 1);
}

TEST(DensityHistogramTest, MemoryBytes) {
  DensityHistogram dh(SmallOptions());
  // (H+1) slices of 100 uint32 counters.
  EXPECT_EQ(dh.MemoryBytes(), 9u * 100u * sizeof(uint32_t));
}

TEST(DensityHistogramTest, BoundaryPositionCountsInEdgeCell) {
  DensityHistogram dh(SmallOptions());
  dh.Apply({0, 1, std::nullopt, MotionState{{100, 100}, {0, 0}, 0}});
  EXPECT_EQ(dh.CountAt(0, 9, 9), 1u);
}

TEST(DensityHistogramTest, DeleteAfterAdvanceOnlyTouchesLiveTicks) {
  DensityHistogram dh(SmallOptions());
  const MotionState s{{20, 20}, {0, 0}, 0};
  dh.Apply({0, 1, std::nullopt, s});
  dh.AdvanceTo(4);
  // Old trajectory covered ticks 0..8; only 4..8 remain in the window.
  dh.Apply({4, 1, s, std::nullopt});
  for (Tick t = 4; t <= 12; ++t) EXPECT_EQ(dh.TotalAt(t), 0) << t;
}

}  // namespace
}  // namespace pdr
