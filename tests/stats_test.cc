#include "pdr/common/stats.h"

#include <gtest/gtest.h>

#include <thread>

namespace pdr {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0);
  EXPECT_DOUBLE_EQ(s.min(), 0);
  EXPECT_DOUBLE_EQ(s.max(), 0);
  EXPECT_DOUBLE_EQ(s.variance(), 0);
}

TEST(RunningStatTest, KnownValues) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatTest, SingleValueHasZeroVariance) {
  RunningStat s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStatTest, MergeMatchesCombinedStream) {
  RunningStat all, first, second;
  for (int i = 0; i < 100; ++i) {
    const double v = i * 0.37 - 3.0;
    all.Add(v);
    (i < 40 ? first : second).Add(v);
  }
  first.Merge(second);
  EXPECT_EQ(first.count(), all.count());
  EXPECT_NEAR(first.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(first.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(first.min(), all.min());
  EXPECT_DOUBLE_EQ(first.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatTest, ToStringSmoke) {
  RunningStat s;
  s.Add(1);
  EXPECT_NE(s.ToString().find("n=1"), std::string::npos);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  const double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 10.0);
  EXPECT_LT(ms, 5000.0);
  EXPECT_NEAR(t.ElapsedSeconds() * 1000.0, t.ElapsedMillis(), 5.0);
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.Reset();
  EXPECT_LT(t.ElapsedMillis(), 10.0);
}

TEST(CostBreakdownTest, TotalAndAccumulate) {
  CostBreakdown a{1.5, {7, 3, 1}, 30.0};
  EXPECT_DOUBLE_EQ(a.TotalMs(), 31.5);
  CostBreakdown b{0.5, {2, 1, 0}, 10.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.cpu_ms, 2.0);
  EXPECT_EQ(a.io_reads(), 4);
  EXPECT_EQ(a.io.logical_reads, 9);
  EXPECT_EQ(a.io.writebacks, 1);
  EXPECT_DOUBLE_EQ(a.io_ms, 40.0);
}

TEST(IoStatsInCostTest, AccumulatesAllComponents) {
  IoStats s{10, 4, 2};
  IoStats t{5, 1, 0};
  s += t;
  EXPECT_EQ(s.logical_reads, 15);
  EXPECT_EQ(s.physical_reads, 5);
  EXPECT_EQ(s.writebacks, 2);
}

}  // namespace
}  // namespace pdr
